#pragma once
/// \file mpi.hpp
/// \brief mini-MPI: a message-passing runtime with MPI semantics.
///
/// The paper's kNN, k-means, and HPO assignments are written against MPI.
/// This container has no MPI implementation, so peachy provides one whose
/// *programming model* is faithful: ranks with private data, explicit
/// tagged point-to-point messages, and the collectives the assignments use
/// (barrier, bcast, scatter, gather, allgather, reduce, allreduce,
/// alltoall).  Ranks execute as OS threads inside one process; message
/// payloads are never *shared with user code* — senders either copy into
/// transport-owned storage or relinquish ownership (`send_move`), so all
/// the ordering/matching hazards of real MPI code are preserved.
///
/// Collectives are implemented *on top of point-to-point* with the
/// classic algorithms (dissemination barrier, binomial-tree bcast/reduce,
/// ring allgather), so the runtime's message/byte counters have the same
/// shape as a real MPI trace — several experiments report them.
///
/// **Transport (DESIGN.md §11).**  Payloads live in pooled, refcounted
/// buffers (buffer_pool.hpp): `post` costs one memcpy and zero
/// allocations in steady state, `post_move`/`send_move` transfer
/// ownership with zero copies, and collectives forward pooled blocks by
/// reference (binomial broadcast, ring allgather) instead of
/// re-serializing.  Receivers can land payloads directly in caller
/// storage via `recv_into` / `recv_bytes_into`.  None of this changes
/// what the counters see: a message is counted once with its payload
/// size, however its bytes travel.
///
/// Usage:
///   auto stats = peachy::mpi::run(4, [](peachy::mpi::Comm& comm) {
///     std::vector<double> part = comm.scatter_blocks<double>(all, /*root=*/0);
///     double local = work(part);
///     std::vector<double> total = comm.allreduce<double>({&local, 1}, std::plus<>{});
///   });

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "analysis/mpi_checker.hpp"
#include "analysis/report.hpp"
#include "faults/faults.hpp"
#include "faults/plan.hpp"
#include "mpi/buffer_pool.hpp"
#include "mpi/transport.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"
#include "tune/tune.hpp"

namespace peachy::mpi {

/// Wildcards for recv matching (analogues of MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Metadata of a received message (analogue of MPI_Status).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Aggregate traffic counters for one run().
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

namespace detail {

// Message and Mailbox moved to mpi/transport.hpp: they are the currency
// both halves of the transport seam trade in.

/// Shared state for one group of ranks.  When constructed with a
/// CheckLevel other than `off` it owns an analysis::MpiChecker that is fed
/// post/block/exit/collective events and can abort the machine with a
/// diagnosis (deadlock, collective mismatch) instead of hanging.
///
/// With a faults::FaultPlan the machine also owns a FaultInjector consulted
/// at the two transport choke points (post_impl / take), and tracks which
/// ranks have *failed*: a failed rank's peers are woken from blocking
/// receives with faults::RankFailedError instead of hanging forever.
///
/// Message movement is delegated to a Transport (transport.hpp): the
/// machine is the seam's sink — `deliver` enqueues into mailboxes,
/// `on_ctrl` applies a peer process's failure / revoke / abort locally.
/// Each failure-protocol entry point therefore splits into a `_local`
/// half (this process's state + wakeups) and a public half that also
/// broadcasts the event to peer processes.
class Machine : public TransportSink {
 public:
  explicit Machine(int nranks, analysis::CheckLevel check = analysis::CheckLevel::off,
                   const faults::FaultPlan* plan = nullptr,
                   std::uint64_t default_timeout_ns = 0,
                   const tune::Tunables* tunables = nullptr,
                   TransportKind transport = TransportKind::kInproc);

  /// Poisons every mailbox if ranks are still blocked in take() (named
  /// abort reason), waits for them to drain out, then detaches from the
  /// transport — after which no pump thread can touch this machine.
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Buffered send: one memcpy into a pooled buffer, zero allocations in
  /// steady state.
  void post(int source, int dest, int tag, std::span<const std::byte> payload,
            std::uint32_t comm = 0);
  /// Zero-copy send of an already-owned payload (pooled or adopted).
  /// Counted identically to post() — the traffic counters describe the
  /// message, not how its bytes traveled.
  void post_move(int source, int dest, int tag, PayloadBuffer&& payload,
                 std::uint32_t comm = 0);
  /// Blocking matched receive.  `timeout_ns > 0` bounds the wait
  /// (faults::TimeoutError on expiry).  `group` scopes the wildcard
  /// failure check to the calling communicator's members (nullptr = all
  /// ranks).  `exact_bytes`, when set, enforces the recv_into size
  /// contract *before* consuming: a mismatched message stays queued and
  /// peekable, and only the error escapes.
  [[nodiscard]] Message take(int self, int source, int tag, std::uint32_t comm = 0,
               std::uint64_t timeout_ns = 0, const std::vector<int>* group = nullptr,
               const std::size_t* exact_bytes = nullptr);
  [[nodiscard]] bool try_peek(int self, int source, int tag, Status& st, std::uint32_t comm = 0);

  void abort(const std::string& why);

  // ---- TransportSink (called by the transport; pump thread on wire) --------

  void deliver(int dest, Message&& m, int copies) override;
  void on_ctrl(CtrlKind k, std::uint32_t arg, const std::string& why) override;

  /// True when this world's ranks live in more than one OS process.
  [[nodiscard]] bool spans_processes() const noexcept { return transport_->spans_processes(); }
  /// True when `rank` executes in this process.
  [[nodiscard]] bool is_local(int rank) const noexcept { return transport_->is_local(rank); }
  [[nodiscard]] TransportKind transport_kind() const noexcept { return transport_->kind(); }

  // ---- failure detection / recovery (peachy::faults integration) -----------

  /// Mark `rank` failed (idempotent) and wake every blocked receiver so
  /// waits on the dead rank become faults::RankFailedError.
  void mark_failed(int rank);
  [[nodiscard]] bool rank_failed(int rank) const noexcept {
    return failed_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
  }
  [[nodiscard]] bool any_failed() const noexcept {
    return failed_count_.load(std::memory_order_acquire) > 0;
  }
  /// First failed rank among `group`'s members (all ranks when nullptr),
  /// or -1 when none.
  [[nodiscard]] int first_failed_in(const std::vector<int>* group) const noexcept;
  /// `group` minus the failed ranks, order preserved.
  [[nodiscard]] std::vector<int> survivors_of(const std::vector<int>& group) const;

  /// Mark a communicator dead machine-wide; every rank blocked (or later
  /// blocking) on it wakes with faults::CommRevokedError.
  void revoke(std::uint32_t comm);
  [[nodiscard]] bool comm_revoked(std::uint32_t comm) const;

  /// One agreed replacement communicator: the survivor group plus its
  /// freshly allocated comm id.
  struct Agreement {
    std::vector<int> group;
    std::uint32_t comm_id = 0;
  };
  /// Single-process survivor agreement: the first proposal stored under
  /// `key` wins and every later caller adopts it (the shared table plays
  /// the role ULFM's agreement protocol plays across processes).
  Agreement agree_group(std::uint64_t key, const std::vector<int>& proposal);

  /// Drop queued messages sent by failed ranks from `self`'s mailbox so
  /// stale traffic cannot satisfy a post-recovery receive.
  void purge_failed_senders(int self);

  [[nodiscard]] std::uint64_t default_timeout_ns() const noexcept {
    return default_timeout_ns_;
  }
  /// The tunables snapshot this machine was constructed with (explicit
  /// RunOptions profile, else tune::active() at construction).  Pinned
  /// for the machine's lifetime so every rank — and every round of every
  /// collective — selects against the same profile even if set_active()
  /// runs concurrently.
  [[nodiscard]] const tune::Tunables& tunables() const noexcept { return *tunables_; }
  [[nodiscard]] faults::FaultInjector* injector() noexcept { return injector_.get(); }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(boxes_.size()); }
  [[nodiscard]] TrafficStats stats() const noexcept;
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  // ---- checker integration (no-ops when the check level is `off`) ----------

  /// Validate rank's `index`-th collective against the other ranks'
  /// records; aborts and throws analysis::CheckFailure on mismatch.
  void note_collective(int rank, std::uint64_t index, const analysis::CollectiveDesc& d);

  /// Rank's program function returned normally; may detect that the
  /// remaining ranks are deadlocked (and abort them).
  void note_exit(int rank);

  /// Report every message still undelivered (call after all ranks joined).
  void scan_leaks();

  [[nodiscard]] analysis::Report report() const;
  [[nodiscard]] analysis::CheckLevel check_level() const noexcept {
    return checker_ ? checker_->level() : analysis::CheckLevel::off;
  }

 private:
  static bool matches(const Message& m, int source, int tag, std::uint32_t comm) noexcept {
    return m.comm == comm && (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  /// The single enqueue path: every message — copied or moved — lands
  /// here, so the checker, the traffic counters, and the fault injector
  /// see identical events for both.
  void post_impl(int source, int dest, int tag, PayloadBuffer&& payload, std::uint32_t comm);

  /// Local halves of the failure protocols: apply the event to this
  /// process's state and wake waiters.  Each returns true when the call
  /// changed state (first observation), which is when the public entry
  /// point broadcasts the event to peer processes — replayed/echoed
  /// events from the wire are applied idempotently and never re-sent.
  bool mark_failed_local(int rank);
  bool revoke_local(std::uint32_t comm);
  bool abort_local(const std::string& why);

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::unique_ptr<analysis::MpiChecker> checker_;
  std::unique_ptr<faults::FaultInjector> injector_;
  const tune::Tunables* tunables_ = nullptr;
  std::uint64_t default_timeout_ns_ = 0;
  std::atomic<bool> aborted_{false};
  std::string abort_reason_;
  std::mutex abort_mu_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};

  // ---- failure / recovery state --------------------------------------------
  std::unique_ptr<std::atomic<bool>[]> failed_;
  std::atomic<int> failed_count_{0};
  mutable std::mutex revoke_mu_;
  std::vector<std::uint32_t> revoked_;
  std::atomic<std::uint32_t> revoked_count_{0};  ///< fast gate for comm_revoked
  std::mutex agree_mu_;
  std::map<std::uint64_t, Agreement> agreements_;
  std::atomic<std::uint32_t> next_comm_id_{1};  ///< 0 is the world communicator

  // ---- teardown / transport ------------------------------------------------
  // ~Machine must not tear down mailboxes under a blocked receiver, so
  // take() registers itself here and the destructor waits for the count
  // to drain (after poisoning the mailboxes so the drain is bounded).
  std::mutex waiters_mu_;
  std::condition_variable waiters_cv_;
  int active_waiters_ = 0;
  bool wire_ = false;  ///< transport delivers asynchronously (shm/socket)
  /// Declared last: destroyed first, so the transport detaches before any
  /// state a late pump-thread delivery could touch is torn down (the
  /// destructor also detaches explicitly; this is belt and braces).
  std::unique_ptr<Transport> transport_;
};

/// obs counter name for a selected collective algorithm
/// ("mpi.coll.algo.<name>").  Returns string literals, as obs requires.
[[nodiscard]] const char* coll_algo_counter_name(tune::CollAlgo algo) noexcept;

/// Span name carrying the op and its selected algorithm (e.g.
/// "allreduce[ring]") so traces show which path ran.  String literals.
[[nodiscard]] const char* coll_span_name(tune::CollOp op, tune::CollAlgo algo) noexcept;

}  // namespace detail

/// Communicator handle passed to every rank's function.  All methods are
/// callable from that rank's thread only.
///
/// A Comm is either the *world* communicator (every machine rank, local
/// rank == world rank) or a *shrunken* communicator produced by shrink():
/// a subset of world ranks renumbered 0..size()-1.  All public APIs speak
/// local ranks; translation to the machine's world numbering happens at
/// the transport boundary.  Exception: faults::RankFailedError carries
/// *world* ranks, matching the fault plan's scope.
class Comm {
 public:
  Comm(detail::Machine& machine, int rank) noexcept
      : machine_{&machine}, rank_{rank}, timeout_ns_{machine.default_timeout_ns()} {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept {
    return group_.empty() ? machine_->size() : static_cast<int>(group_.size());
  }

  /// This rank in machine/world numbering (== rank() on the world comm).
  [[nodiscard]] int world_rank() const noexcept { return to_world(rank_); }

  /// World ranks of this communicator's members, indexed by local rank.
  [[nodiscard]] std::vector<int> group() const {
    if (!group_.empty()) return group_;
    std::vector<int> g(static_cast<std::size_t>(machine_->size()));
    for (std::size_t i = 0; i < g.size(); ++i) g[i] = static_cast<int>(i);
    return g;
  }

  /// Identifies this communicator's messages in transit (0 = world).
  [[nodiscard]] std::uint32_t comm_id() const noexcept { return comm_id_; }

  /// True when the world's ranks live in more than one OS process (a run
  /// spawned by mpi::launch / peachy-launch over a wire transport).
  /// Programs that keep per-run state in process-local storage — caches,
  /// checkpoint stores — must key the decision "who writes it" on this:
  /// with separate processes there is no shared memory to lean on.
  [[nodiscard]] bool spans_processes() const noexcept { return machine_->spans_processes(); }

  /// The transport backend this run is using.
  [[nodiscard]] TransportKind transport_kind() const noexcept {
    return machine_->transport_kind();
  }

  // ---- deadlines / failure handling (peachy::faults) ----------------------

  /// Deadline applied to every blocking receive — and, because collectives
  /// are built on receives, to every collective — on this communicator.
  /// Zero (the default) blocks forever, as real MPI does; expiry raises
  /// faults::TimeoutError.  Inherited by communicators shrink() returns.
  /// A negative deadline is a std::invalid_argument: it used to clamp
  /// silently to "wait forever" — the exact opposite of a caller who
  /// (say) computed `deadline - elapsed` and went negative intended.
  void set_op_timeout(std::chrono::nanoseconds t) {
    timeout_ns_ = checked_timeout_ns(t, "set_op_timeout");
  }
  [[nodiscard]] std::chrono::nanoseconds op_timeout() const noexcept {
    return std::chrono::nanoseconds{static_cast<std::int64_t>(timeout_ns_)};
  }

  /// ULFM-style revocation: mark this communicator dead machine-wide, so
  /// every rank blocked (or later blocking) in one of its operations wakes
  /// with faults::CommRevokedError.  Call after catching RankFailedError
  /// to push all survivors out of the abandoned operation and into their
  /// recovery path.
  void revoke();

  /// ULFM-style recovery: build the replacement communicator from the
  /// surviving members, renumbered 0..n-1 in world-rank order.  Collective
  /// over the survivors (every survivor must call it the same number of
  /// times); no messages are exchanged — survivors converge through the
  /// machine's agreement table.  Also drops queued messages from failed
  /// ranks addressed to this rank.
  [[nodiscard]] Comm shrink();

  // ---- point to point ----------------------------------------------------

  /// Buffered send: copies the payload into dest's mailbox; never blocks.
  void send_bytes(int dest, int tag, std::span<const std::byte> payload) {
    check_user_send(dest, tag);
    machine_->post(world_rank(), to_world(dest), tag, payload, comm_id_);
  }

  /// Zero-copy send of an owned byte vector: the transport adopts the
  /// vector's storage; no bytes are copied on the send side.
  void send_bytes_move(int dest, int tag, std::vector<std::byte>&& payload) {
    check_user_send(dest, tag);
    machine_->post_move(world_rank(), to_world(dest), tag,
                        BufferPool::instance().adopt(std::move(payload)), comm_id_);
  }

  /// Blocking receive matching (source, tag); wildcards allowed.
  [[nodiscard]] std::vector<std::byte> recv_bytes(int source, int tag, Status* st = nullptr) {
    detail::Message m = take_(source, tag);
    if (st != nullptr) *st = Status{m.source, m.tag, m.payload.size()};
    // Zero-copy when the sender used send_bytes_move; one memcpy otherwise.
    return m.payload.release_bytes();
  }

  /// recv_bytes with a one-shot deadline overriding the communicator's
  /// op timeout; raises faults::TimeoutError on expiry.
  [[nodiscard]] std::vector<std::byte> recv_bytes(int source, int tag,
                                                  std::chrono::nanoseconds timeout,
                                    Status* st = nullptr) {
    detail::Message m = take_timed_(source, tag, checked_timeout_ns(timeout, "recv_bytes"));
    if (st != nullptr) *st = Status{m.source, m.tag, m.payload.size()};
    return m.payload.release_bytes();
  }

  /// Blocking receive into the transport's own buffer (zero copies).  The
  /// returned handle is read-only; it recycles its storage on drop.
  [[nodiscard]] PayloadBuffer recv_buffer(int source, int tag, Status* st = nullptr) {
    detail::Message m = take_(source, tag);
    if (st != nullptr) *st = Status{m.source, m.tag, m.payload.size()};
    return std::move(m.payload);
  }

  /// Blocking receive landing the payload directly in caller storage.
  /// The matched message must be exactly `out.size()` bytes: a larger
  /// payload (would truncate) or a smaller one (short message) is a named
  /// error — and the mismatched message is NOT consumed: it stays queued
  /// and peekable, so the error is observable and recoverable (the caller
  /// can probe for the real size and receive it properly).
  Status recv_bytes_into(std::span<std::byte> out, int source, int tag) {
    const std::size_t want = out.size();
    detail::Message m = take_(source, tag, &want);
    if (!out.empty()) std::memcpy(out.data(), m.payload.data(), out.size());
    return Status{m.source, m.tag, m.payload.size()};
  }

  /// Non-blocking probe: true if a matching message is waiting.
  [[nodiscard]] bool probe(int source, int tag, Status* st = nullptr) {
    PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
                 "probe: bad source rank");
    Status tmp;
    const bool ok = machine_->try_peek(
        world_rank(), source == kAnySource ? kAnySource : to_world(source), tag, tmp, comm_id_);
    if (ok) tmp.source = to_local(tmp.source);
    if (ok && st != nullptr) *st = tmp;
    return ok;
  }

  /// Typed send of a span of trivially copyable elements.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(data));
  }

  /// Typed zero-copy send of an owned vector.
  template <typename T>
  void send_move(int dest, int tag, std::vector<T>&& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_user_send(dest, tag);
    machine_->post_move(world_rank(), to_world(dest), tag,
                        BufferPool::instance().adopt_typed(std::move(data)), comm_id_);
  }

  /// Typed send of one value.
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    send<T>(dest, tag, std::span<const T>{&v, 1});
  }

  /// Typed receive: returns however many elements the sender sent.  The
  /// payload is deserialized directly into the typed vector (one memcpy).
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag, Status* st = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    detail::Message m = take_(source, tag);
    if (st != nullptr) *st = Status{m.source, m.tag, m.payload.size()};
    if constexpr (std::is_same_v<T, std::byte>) {
      return m.payload.release_bytes();
    } else {
      PEACHY_CHECK(m.payload.size() % sizeof(T) == 0,
                   "recv: payload size not a multiple of sizeof(T)");
      std::vector<T> out(m.payload.size() / sizeof(T));
      if (!out.empty()) std::memcpy(out.data(), m.payload.data(), m.payload.size());
      return out;
    }
  }

  /// Typed receive with a one-shot deadline overriding the communicator's
  /// op timeout; raises faults::TimeoutError on expiry.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag, std::chrono::nanoseconds timeout,
                      Status* st = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    detail::Message m = take_timed_(source, tag, checked_timeout_ns(timeout, "recv"));
    if (st != nullptr) *st = Status{m.source, m.tag, m.payload.size()};
    PEACHY_CHECK(m.payload.size() % sizeof(T) == 0,
                 "recv: payload size not a multiple of sizeof(T)");
    std::vector<T> out(m.payload.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), m.payload.data(), m.payload.size());
    return out;
  }

  /// Typed receive landing exactly `out.size()` elements in caller
  /// storage (see recv_bytes_into for the size contract).
  template <typename T>
  Status recv_into(std::span<T> out, int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_bytes_into(std::as_writable_bytes(out), source, tag);
  }

  /// Typed receive of exactly one value.
  template <typename T>
  [[nodiscard]] T recv_value(int source, int tag, Status* st = nullptr) {
    std::vector<T> v = recv<T>(source, tag, st);
    PEACHY_CHECK(v.size() == 1, "recv_value: expected exactly one element");
    return v.front();
  }

  // ---- collectives ---------------------------------------------------------
  // Every rank of the communicator must call each collective in the same
  // order (as in MPI).  Internal tags are sequenced per call so distinct
  // collectives cannot cross-match.  All of them are allocation-free in
  // steady state: payloads ride pooled buffers, forwarded blocks are
  // refcount bumps, and the in-place variants put results straight into
  // caller storage.

  /// Dissemination barrier: ceil(log2 p) rounds of pairwise tokens.
  void barrier();

  /// Binomial-tree broadcast of a byte buffer from `root`.
  void broadcast_bytes(std::vector<std::byte>& data, int root);

  /// Typed broadcast: after the call every rank holds root's vector.
  /// Non-roots do not know the payload size in advance, so algorithm
  /// selection uses tune::kBytesUnknown (byte-unconstrained rules only).
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    PEACHY_CHECK(root >= 0 && root < size(), "broadcast: bad root");
    const int tag = begin_collective(
        {"broadcast", root, 1,
         rank_ == root ? static_cast<std::int64_t>(data.size() * sizeof(T)) : std::int64_t{-1}});
    const tune::CollAlgo algo = pick_algo_(tune::CollOp::kBroadcast, tune::kBytesUnknown);
    const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kBroadcast, algo),
                              "algo", static_cast<std::int64_t>(algo)};
    PayloadBuffer buf;
    if (rank_ == root) {
      buf = BufferPool::instance().acquire(data.size() * sizeof(T));
      if (!data.empty()) std::memcpy(buf.mutable_data(), data.data(), buf.size());
    }
    bcast_payload_algo(buf, root, tag, algo);
    if (rank_ != root) {
      PEACHY_CHECK(buf.size() % sizeof(T) == 0, "broadcast: size mismatch");
      data.resize(buf.size() / sizeof(T));
      if (!data.empty()) std::memcpy(data.data(), buf.data(), buf.size());
    }
  }

  /// Typed broadcast of one value.
  template <typename T>
  [[nodiscard]] T broadcast_value(T v, int root) {
    std::vector<T> buf{v};
    broadcast(buf, root);
    return buf.front();
  }

  /// In-place typed broadcast: every rank passes a span of the same
  /// length; on return every span holds root's contents.  A received
  /// payload of any other size is a named error.
  template <typename T>
  void broadcast_into(std::span<T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    PEACHY_CHECK(root >= 0 && root < size(), "broadcast: bad root");
    const int tag = begin_collective(
        {"broadcast", root, 1,
         rank_ == root ? static_cast<std::int64_t>(data.size() * sizeof(T)) : std::int64_t{-1}});
    // Every rank passes an equal-length span, so the byte count is a
    // rank-symmetric selection key here (unlike plain broadcast).
    const tune::CollAlgo algo = pick_algo_(tune::CollOp::kBroadcast,
                                           static_cast<std::int64_t>(data.size() * sizeof(T)));
    const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kBroadcast, algo),
                              "algo", static_cast<std::int64_t>(algo)};
    PayloadBuffer buf;
    if (rank_ == root) {
      buf = BufferPool::instance().acquire(data.size() * sizeof(T));
      if (!data.empty()) std::memcpy(buf.mutable_data(), data.data(), buf.size());
    }
    bcast_payload_algo(buf, root, tag, algo);
    if (rank_ != root) {
      PEACHY_CHECK(buf.size() == data.size() * sizeof(T),
                   "broadcast_into: received " + std::to_string(buf.size()) +
                       " bytes into a " + std::to_string(data.size() * sizeof(T)) +
                       "-byte buffer");
      if (!data.empty()) std::memcpy(data.data(), buf.data(), buf.size());
    }
  }

  /// In-place binomial-tree reduction: combines every rank's `data` into
  /// root's `data` with element-wise `op` (commutative + associative).
  /// Non-root ranks' buffers are left with their own partial results
  /// (unspecified beyond that).  Incoming contributions are combined
  /// straight out of the transport's pooled buffers — no scratch
  /// allocations.
  template <typename T, typename Op>
  void reduce_inplace(std::span<T> data, Op op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "reduce reads contributions in place from pooled storage");
    const int tag = begin_collective({"reduce", root, sizeof(T),
                                      static_cast<std::int64_t>(data.size())});
    // Contribution sizes are checked equal on every rank, so the byte
    // count is a rank-symmetric selection key.
    const tune::CollAlgo algo = pick_algo_(tune::CollOp::kReduce,
                                           static_cast<std::int64_t>(data.size() * sizeof(T)));
    const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kReduce, algo),
                              "algo", static_cast<std::int64_t>(algo)};
    switch (algo) {
      case tune::CollAlgo::kLinear:
        reduce_linear_(data, op, root, tag);
        return;
      case tune::CollAlgo::kRing:
        reduce_ring_(data, op, root, tag);
        return;
      default:
        reduce_binomial_(data, op, root, tag);
        return;
    }
  }

  /// Binomial-tree reduction with element-wise op; result valid at root
  /// only (other ranks get an empty vector).  `op(a,b)` must be
  /// commutative and associative.
  template <typename T, typename Op>
  [[nodiscard]] std::vector<T> reduce(std::span<const T> local, Op op, int root) {
    std::vector<T> acc(local.begin(), local.end());
    reduce_inplace<T, Op>(std::span<T>{acc.data(), acc.size()}, op, root);
    if (rank_ != root) return {};
    return acc;
  }

  /// In-place allreduce: on return every rank's `data` holds the
  /// element-wise combination — the *same bytes* on every rank, whichever
  /// algorithm the profile selects (each algorithm pins one canonical
  /// combine order computed identically everywhere).  The default (and
  /// the binomial selection) is the historical reduce-to-0-then-broadcast
  /// composition, whose two legs run their own selection; ring,
  /// recursive-doubling, and linear run as a single collective.  Zero
  /// allocations in steady state.
  template <typename T, typename Op>
  void allreduce_inplace(std::span<T> data, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "allreduce reads contributions in place from pooled storage");
    const tune::CollAlgo algo = pick_algo_(tune::CollOp::kAllreduce,
                                           static_cast<std::int64_t>(data.size() * sizeof(T)));
    if (algo == tune::CollAlgo::kRing || algo == tune::CollAlgo::kRecDouble ||
        algo == tune::CollAlgo::kLinear) {
      const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kAllreduce, algo),
                                "algo", static_cast<std::int64_t>(algo)};
      const int tag = begin_collective({"allreduce", -1, sizeof(T),
                                        static_cast<std::int64_t>(data.size())});
      if (algo == tune::CollAlgo::kRing) {
        allreduce_ring_(data, op, tag);
      } else if (algo == tune::CollAlgo::kRecDouble) {
        allreduce_recdouble_(data, op, tag);
      } else {
        allreduce_linear_(data, op, tag);
      }
      return;
    }
    reduce_inplace<T, Op>(data, op, 0);
    broadcast_into<T>(data, 0);
  }

  /// Reduce-then-broadcast allreduce; every rank gets the combined vector.
  template <typename T, typename Op>
  [[nodiscard]] std::vector<T> allreduce(std::span<const T> local, Op op) {
    std::vector<T> total(local.begin(), local.end());
    allreduce_inplace<T, Op>(std::span<T>{total.data(), total.size()}, op);
    return total;
  }

  /// Allreduce of one value.
  template <typename T, typename Op>
  [[nodiscard]] T allreduce_value(T v, Op op) {
    allreduce_inplace<T, Op>(std::span<T>{&v, 1}, op);
    return v;
  }

  /// Gather variable-size contributions; root receives the concatenation
  /// in rank order (gatherv semantics).  Non-root ranks get {}.  Root
  /// assembles the result with a single allocation — incoming blocks stay
  /// in pooled transport buffers until they are copied to their offsets.
  template <typename T>
  [[nodiscard]] std::vector<T> gather(std::span<const T> local, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = begin_collective({"gather", root, sizeof(T), -1});
    if (rank_ != root) {
      coll_send<T>(root, tag, local);
      return {};
    }
    const int p = size();
    std::vector<PayloadBuffer> parts(static_cast<std::size_t>(p));
    std::size_t total_bytes = local.size() * sizeof(T);
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      parts[static_cast<std::size_t>(r)] = recv_buffer(r, tag);
      const std::size_t got = parts[static_cast<std::size_t>(r)].size();
      PEACHY_CHECK(got % sizeof(T) == 0, "gather: payload size not a multiple of sizeof(T)");
      total_bytes += got;
    }
    std::vector<T> all(total_bytes / sizeof(T));
    auto* out = reinterpret_cast<std::byte*>(all.data());
    for (int r = 0; r < p; ++r) {
      if (r == root) {
        if (!local.empty()) std::memcpy(out, local.data(), local.size() * sizeof(T));
        out += local.size() * sizeof(T);
      } else {
        const PayloadBuffer& part = parts[static_cast<std::size_t>(r)];
        if (!part.empty()) std::memcpy(out, part.data(), part.size());
        out += part.size();
      }
    }
    return all;
  }

  /// Ring allgather of variable-size contributions: p−1 rounds, each rank
  /// forwarding the block it received in the previous round *by
  /// reference* (a refcount bump — blocks are never re-serialized).
  /// Returns the concatenation in rank order on every rank.
  template <typename T>
  [[nodiscard]] std::vector<T> allgather(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = begin_collective({"allgather", -1, sizeof(T), -1});
    // Contribution sizes may differ per rank (gatherv semantics), so no
    // rank-symmetric byte key exists — only unconstrained rules match.
    const tune::CollAlgo algo = pick_algo_(tune::CollOp::kAllgather, tune::kBytesUnknown);
    const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kAllgather, algo),
                              "algo", static_cast<std::int64_t>(algo)};
    const int p = size();
    std::vector<PayloadBuffer> blocks(static_cast<std::size_t>(p));
    blocks[static_cast<std::size_t>(rank_)] =
        BufferPool::instance().acquire(local.size() * sizeof(T));
    if (!local.empty()) {
      std::memcpy(blocks[static_cast<std::size_t>(rank_)].mutable_data(), local.data(),
                  local.size() * sizeof(T));
    }
    if (algo == tune::CollAlgo::kLinear) {
      allgather_blocks_linear(blocks, tag);
    } else if (algo == tune::CollAlgo::kRecDouble) {
      allgather_blocks_recdouble(blocks, tag);
    } else {
      allgather_blocks_ring(blocks, tag);
    }
    for (int r = 0; r < p; ++r) {
      PEACHY_CHECK(blocks[static_cast<std::size_t>(r)].size() % sizeof(T) == 0,
                   "allgather: payload size not a multiple of sizeof(T)");
    }
    std::size_t total_bytes = 0;
    for (const auto& b : blocks) total_bytes += b.size();
    std::vector<T> all(total_bytes / sizeof(T));
    auto* out = reinterpret_cast<std::byte*>(all.data());
    for (const auto& b : blocks) {
      if (!b.empty()) std::memcpy(out, b.data(), b.size());
      out += b.size();
    }
    return all;
  }

  /// In-place ring allgather for block-partitioned data: rank r
  /// contributes the static block r of `out` (support::static_block — the
  /// same partition scatter_blocks uses) and on return every rank's `out`
  /// holds the full concatenation.  Traffic is identical to allgather();
  /// the result lands directly in caller storage with no concatenation
  /// buffer.  A contribution that does not match the block layout is a
  /// named error.
  template <typename T>
  void allgather_into(std::span<const T> local, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = begin_collective({"allgather", -1, sizeof(T), -1});
    // The full output span has the same length on every rank (the static
    // block contract), so its byte count is a symmetric selection key.
    const tune::CollAlgo algo = pick_algo_(tune::CollOp::kAllgather,
                                           static_cast<std::int64_t>(out.size() * sizeof(T)));
    const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kAllgather, algo),
                              "algo", static_cast<std::int64_t>(algo)};
    const int p = size();
    const auto mine = support::static_block(out.size(), static_cast<std::size_t>(p),
                                            static_cast<std::size_t>(rank_));
    PEACHY_CHECK(local.size() == mine.end - mine.begin,
                 "allgather_into: local size " + std::to_string(local.size()) +
                     " does not equal this rank's static block of the output (" +
                     std::to_string(mine.end - mine.begin) + " elements)");
    if (!local.empty()) {
      std::memcpy(out.data() + mine.begin, local.data(), local.size() * sizeof(T));
    }
    if (p == 1) return;
    if (algo == tune::CollAlgo::kLinear || algo == tune::CollAlgo::kRecDouble) {
      // Variant paths run the block exchange over pooled buffers, then
      // place each block by its static offset (sizes are all computable
      // from the shared output length, so placement needs no extra
      // metadata).
      std::vector<PayloadBuffer> blocks(static_cast<std::size_t>(p));
      blocks[static_cast<std::size_t>(rank_)] =
          BufferPool::instance().acquire(local.size() * sizeof(T));
      if (!local.empty()) {
        std::memcpy(blocks[static_cast<std::size_t>(rank_)].mutable_data(), local.data(),
                    local.size() * sizeof(T));
      }
      if (algo == tune::CollAlgo::kLinear) {
        allgather_blocks_linear(blocks, tag);
      } else {
        allgather_blocks_recdouble(blocks, tag);
      }
      for (int r = 0; r < p; ++r) {
        if (r == rank_) continue;
        const PayloadBuffer& b = blocks[static_cast<std::size_t>(r)];
        const auto blk = support::static_block(out.size(), static_cast<std::size_t>(p),
                                               static_cast<std::size_t>(r));
        PEACHY_CHECK(b.size() == (blk.end - blk.begin) * sizeof(T),
                     "allgather_into: received " + std::to_string(b.size()) +
                         " bytes for block " + std::to_string(r) + " (expected " +
                         std::to_string((blk.end - blk.begin) * sizeof(T)) + ")");
        if (!b.empty()) std::memcpy(out.data() + blk.begin, b.data(), b.size());
      }
      return;
    }
    PayloadBuffer cur = BufferPool::instance().acquire(local.size() * sizeof(T));
    if (!local.empty()) std::memcpy(cur.mutable_data(), local.data(), local.size() * sizeof(T));
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      const int recv_block = (rank_ - step - 1 + p) % p;
      machine_->post_move(world_rank(), to_world(right), tag, cur.share(), comm_id_);
      cur = recv_buffer(left, tag);
      const auto blk = support::static_block(out.size(), static_cast<std::size_t>(p),
                                             static_cast<std::size_t>(recv_block));
      PEACHY_CHECK(cur.size() == (blk.end - blk.begin) * sizeof(T),
                   "allgather_into: received " + std::to_string(cur.size()) +
                       " bytes for block " + std::to_string(recv_block) + " (expected " +
                       std::to_string((blk.end - blk.begin) * sizeof(T)) + ")");
      if (!cur.empty()) std::memcpy(out.data() + blk.begin, cur.data(), cur.size());
    }
  }

  /// Scatter near-even static blocks of root's vector; returns this
  /// rank's block (OpenMP/Chapel block-partition rule).
  template <typename T>
  [[nodiscard]] std::vector<T> scatter_blocks(std::span<const T> all, int root) {
    const int tag = begin_collective(
        {"scatter", root, sizeof(T),
         rank_ == root ? static_cast<std::int64_t>(all.size()) : std::int64_t{-1}});
    const int p = size();
    if (rank_ == root) {
      const std::size_t n = all.size();
      std::vector<T> mine;
      for (int r = 0; r < p; ++r) {
        const auto blk = support::static_block(n, p, static_cast<std::size_t>(r));
        std::span<const T> piece = all.subspan(blk.begin, blk.end - blk.begin);
        if (r == root) {
          mine.assign(piece.begin(), piece.end());
        } else {
          coll_send<T>(r, tag, piece);
        }
      }
      return mine;
    }
    return recv<T>(root, tag);
  }

  /// All-to-all of variable-size buffers: sendbufs[r] goes to rank r;
  /// returns recvbufs where recvbufs[r] came from rank r (alltoallv).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& sendbufs) {
    PEACHY_CHECK(static_cast<int>(sendbufs.size()) == size(),
                 "alltoall: need one send buffer per rank");
    const int tag = begin_collective({"alltoall", -1, sizeof(T), -1});
    const int p = size();
    std::vector<std::vector<T>> recvbufs(static_cast<std::size_t>(p));
    recvbufs[static_cast<std::size_t>(rank_)] = sendbufs[static_cast<std::size_t>(rank_)];
    // Buffered sends never block, so post all sends then drain receives.
    for (int k = 1; k < p; ++k) {
      const int dest = (rank_ + k) % p;
      coll_send<T>(dest, tag, sendbufs[static_cast<std::size_t>(dest)]);
    }
    for (int k = 1; k < p; ++k) {
      const int src = (rank_ - k + p) % p;
      recvbufs[static_cast<std::size_t>(src)] = recv<T>(src, tag);
    }
    return recvbufs;
  }

  /// All-to-all taking ownership of the send buffers: the self-bucket is
  /// *moved* into the result (no copy), and every outgoing buffer rides
  /// the zero-copy adoption path.  Traffic counters are identical to the
  /// copying overload (the self-bucket never was a message).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoall(std::vector<std::vector<T>>&& sendbufs) {
    static_assert(std::is_trivially_copyable_v<T>);
    PEACHY_CHECK(static_cast<int>(sendbufs.size()) == size(),
                 "alltoall: need one send buffer per rank");
    const int tag = begin_collective({"alltoall", -1, sizeof(T), -1});
    const int p = size();
    std::vector<std::vector<T>> recvbufs(static_cast<std::size_t>(p));
    recvbufs[static_cast<std::size_t>(rank_)] =
        std::move(sendbufs[static_cast<std::size_t>(rank_)]);
    for (int k = 1; k < p; ++k) {
      const int dest = (rank_ + k) % p;
      machine_->post_move(
          world_rank(), to_world(dest), tag,
          BufferPool::instance().adopt_typed(std::move(sendbufs[static_cast<std::size_t>(dest)])),
          comm_id_);
    }
    for (int k = 1; k < p; ++k) {
      const int src = (rank_ - k + p) % p;
      recvbufs[static_cast<std::size_t>(src)] = recv<T>(src, tag);
    }
    return recvbufs;
  }

  /// Traffic counters of the whole machine so far.
  [[nodiscard]] TrafficStats traffic() const noexcept { return machine_->stats(); }

  /// Number of collectives this rank has entered so far.
  [[nodiscard]] std::uint64_t collective_seq() const noexcept { return coll_seq_; }

  /// Test/debug hook: jump the collective sequence counter (must be called
  /// identically on every rank, outside any in-flight collective).  Used
  /// by regression tests that exercise the tag-space boundary.
  void debug_set_collective_seq(std::uint64_t seq) noexcept { coll_seq_ = seq; }

 private:
  // Internal tags live above the user tag space and advance per collective
  // call; ranks call collectives in identical order so the tags agree.
  // The sequence is never wrapped: wrapping could alias a live tag in a
  // long-running program and cross-match two distinct collectives, so the
  // full 2^30 tag values above the base are used and exhaustion is a hard
  // error instead of a silent hazard.
  static constexpr int kInternalTagBase = analysis::kMpiInternalTagBase;
  static constexpr std::uint64_t kInternalSeqLimit = (std::uint64_t{1} << 30) - 1;
  int next_internal_tag() {
    PEACHY_CHECK(coll_seq_ <= kInternalSeqLimit,
                 "collective sequence space exhausted (2^30 collectives in one run)");
    return kInternalTagBase + static_cast<int>(coll_seq_++);
  }

  /// Allocate the collective's tag and (when checking is on) validate the
  /// call against the other ranks' collective sequences.  Shrunken
  /// communicators skip the checker: its collective matcher assumes
  /// world-wide participation, and sub-communicator collectives validate
  /// their shape through payload-size checks instead.
  int begin_collective(const analysis::CollectiveDesc& d) {
    const std::uint64_t index = coll_seq_;
    const int tag = next_internal_tag();
    if (comm_id_ == 0) machine_->note_collective(rank_, index, d);
    return tag;
  }

  void check_user_send(int dest, int tag) const {
    PEACHY_CHECK(dest >= 0 && dest < size(), "send: bad destination rank");
    PEACHY_CHECK(tag >= 0 && tag < kInternalTagBase,
                 "send: user tags must be in [0, 2^30)");
  }

  // ---- algorithmic collectives (peachy::tune, DESIGN.md §14) ---------------
  // Selection is communication-free: every rank resolves the same
  // (op, p, bytes) key against the machine's pinned tunables snapshot and
  // branches to the same algorithm without agreeing on it explicitly.
  // `bytes` must therefore be rank-symmetric; operations whose payload
  // size non-roots cannot know in advance pass tune::kBytesUnknown, which
  // matches only byte-unconstrained rules.  kAuto always means the
  // historical default path, byte-for-byte, so a run with no profile
  // loaded produces exactly the pre-tune traffic.

  /// Resolve the algorithm for one collective call and bump its
  /// `mpi.coll.algo.<name>` counter.
  [[nodiscard]] tune::CollAlgo pick_algo_(tune::CollOp op, std::int64_t bytes) {
    const tune::CollAlgo algo = machine_->tunables().coll_algo(op, size(), bytes);
    if (obs::enabled()) obs::counter(detail::coll_algo_counter_name(algo)).add(1);
    return algo;
  }

  /// Binomial-tree broadcast of a pooled payload along `tag`'s edges:
  /// at root `buf` is the payload to send (forwarded to each child by
  /// refcount bump); at non-root, `buf` holds the received payload on
  /// return, after forwarding it down this rank's subtree.
  void bcast_payload(PayloadBuffer& buf, int root, int tag);

  /// Flat broadcast: root posts the payload to every other rank (p−1
  /// refcount bumps, one round); non-roots do a single receive.
  void bcast_payload_linear(PayloadBuffer& buf, int root, int tag);

  /// Chain broadcast: the payload hops rank to rank around the ring
  /// starting at root (p−1 sequential hops, each a refcount bump).
  void bcast_payload_chain(PayloadBuffer& buf, int root, int tag);

  /// Dispatch on the selected broadcast algorithm (kAuto → binomial, the
  /// historical default; kRecDouble has no broadcast form and also takes
  /// the default path).
  void bcast_payload_algo(PayloadBuffer& buf, int root, int tag, tune::CollAlgo algo);

  /// Block-exchange engines behind allgather/allgather_into.  On entry
  /// `blocks[rank_]` holds this rank's contribution; on return every
  /// slot is filled.  All forwarding is by refcount bump.
  void allgather_blocks_ring(std::vector<PayloadBuffer>& blocks, int tag);
  void allgather_blocks_linear(std::vector<PayloadBuffer>& blocks, int tag);
  void allgather_blocks_recdouble(std::vector<PayloadBuffer>& blocks, int tag);

  /// The historical binomial-tree reduction (the kAuto path): combine
  /// order is "own value first, then each arriving subtree in mask
  /// order" — pinned per (p, root), so float results repeat bit-for-bit.
  template <typename T, typename Op>
  void reduce_binomial_(std::span<T> data, Op op, int root, int tag) {
    const int p = size();
    const int vrank = (rank_ - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if ((vrank & mask) == 0) {
        const int vsrc = vrank | mask;
        if (vsrc < p) {
          const int src = (vsrc + root) % p;
          const PayloadBuffer part = recv_buffer(src, tag);
          PEACHY_CHECK(part.size() == data.size() * sizeof(T),
                       "reduce: contribution size mismatch");
          const T* in = reinterpret_cast<const T*>(part.data());
          for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(data[i], in[i]);
        }
      } else {
        const int dest = ((vrank & ~mask) + root) % p;
        coll_send<T>(dest, tag, std::span<const T>{data.data(), data.size()});
        return;
      }
      mask <<= 1;
    }
  }

  /// Flat reduction: every non-root sends its contribution to root in
  /// one round; root folds them in ascending rank order (the pinned
  /// combine order), starting from its own value.
  template <typename T, typename Op>
  void reduce_linear_(std::span<T> data, Op op, int root, int tag) {
    const int p = size();
    if (p == 1) return;
    if (rank_ != root) {
      coll_send<T>(root, tag, std::span<const T>{data.data(), data.size()});
      return;
    }
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      const PayloadBuffer part = recv_buffer(r, tag);
      PEACHY_CHECK(part.size() == data.size() * sizeof(T),
                   "reduce: contribution size mismatch");
      const T* in = reinterpret_cast<const T*>(part.data());
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(data[i], in[i]);
    }
  }

  /// Ring reduce-scatter over static_block chunks: p−1 rounds, each rank
  /// forwarding its running partial for one chunk to the right and
  /// folding the arriving partial from the left into its own data.
  /// Chunk c's contributions fold in ring order c, c+1, …, c−1 (the
  /// pinned combine order), finishing at rank (c−1+p)%p — equivalently,
  /// rank r ends owning the fully-reduced chunk (r+1)%p in place.
  template <typename T, typename Op>
  void ring_reduce_scatter_(std::span<T> data, Op op, int tag) {
    const int p = size();
    const std::size_t n = data.size();
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
      const int send_chunk = (rank_ - s + p) % p;
      const int recv_chunk = (rank_ - s - 1 + p) % p;
      const auto sb = support::static_block(n, static_cast<std::size_t>(p),
                                            static_cast<std::size_t>(send_chunk));
      coll_send<T>(right, tag, std::span<const T>{data.data() + sb.begin, sb.end - sb.begin});
      const auto rb = support::static_block(n, static_cast<std::size_t>(p),
                                            static_cast<std::size_t>(recv_chunk));
      const PayloadBuffer part = recv_buffer(left, tag);
      PEACHY_CHECK(part.size() == (rb.end - rb.begin) * sizeof(T),
                   "reduce: contribution size mismatch");
      const T* in = reinterpret_cast<const T*>(part.data());
      for (std::size_t i = 0; i < rb.end - rb.begin; ++i) {
        data[rb.begin + i] = op(in[i], data[rb.begin + i]);
      }
    }
  }

  /// Ring reduction: reduce-scatter, then every rank ships its owned
  /// fully-reduced chunk to root, which assembles them in place.
  template <typename T, typename Op>
  void reduce_ring_(std::span<T> data, Op op, int root, int tag) {
    const int p = size();
    if (p == 1) return;
    ring_reduce_scatter_(data, op, tag);
    const int own_chunk = (rank_ + 1) % p;
    const auto ob = support::static_block(data.size(), static_cast<std::size_t>(p),
                                          static_cast<std::size_t>(own_chunk));
    if (rank_ != root) {
      coll_send<T>(root, tag, std::span<const T>{data.data() + ob.begin, ob.end - ob.begin});
      return;
    }
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      const int chunk = (r + 1) % p;
      const auto cb = support::static_block(data.size(), static_cast<std::size_t>(p),
                                            static_cast<std::size_t>(chunk));
      // FIFO per (source, tag) keeps this gather round behind the same
      // source's reduce-scatter rounds, so one tag serves both phases.
      const PayloadBuffer part = recv_buffer(r, tag);
      PEACHY_CHECK(part.size() == (cb.end - cb.begin) * sizeof(T),
                   "reduce: contribution size mismatch");
      if (!part.empty()) std::memcpy(data.data() + cb.begin, part.data(), part.size());
    }
  }

  /// Ring allreduce: reduce-scatter, then p−1 allgather rounds forwarding
  /// the newest complete chunk.  Every rank ends with identical bytes
  /// (each chunk was folded exactly once, in ring order).
  template <typename T, typename Op>
  void allreduce_ring_(std::span<T> data, Op op, int tag) {
    const int p = size();
    if (p == 1) return;
    ring_reduce_scatter_(data, op, tag);
    const std::size_t n = data.size();
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
      const int send_chunk = (rank_ + 1 - s + p) % p;
      const int recv_chunk = (rank_ - s + p) % p;
      const auto sb = support::static_block(n, static_cast<std::size_t>(p),
                                            static_cast<std::size_t>(send_chunk));
      coll_send<T>(right, tag, std::span<const T>{data.data() + sb.begin, sb.end - sb.begin});
      const auto rb = support::static_block(n, static_cast<std::size_t>(p),
                                            static_cast<std::size_t>(recv_chunk));
      const PayloadBuffer part = recv_buffer(left, tag);
      PEACHY_CHECK(part.size() == (rb.end - rb.begin) * sizeof(T),
                   "allreduce: chunk size mismatch");
      if (!part.empty()) std::memcpy(data.data() + rb.begin, part.data(), part.size());
    }
  }

  /// Recursive-doubling allreduce (power-of-two p, enforced at
  /// selection): log2(p) rounds of pairwise full-vector exchange.  Both
  /// partners fold with the *lower-ranked* side as the left operand, so
  /// every rank of every pair — inductively, every rank — computes
  /// bit-identical accumulators.
  template <typename T, typename Op>
  void allreduce_recdouble_(std::span<T> data, Op op, int tag) {
    const int p = size();
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = rank_ ^ mask;
      coll_send<T>(partner, tag, std::span<const T>{data.data(), data.size()});
      const PayloadBuffer part = recv_buffer(partner, tag);
      PEACHY_CHECK(part.size() == data.size() * sizeof(T),
                   "allreduce: contribution size mismatch");
      const T* in = reinterpret_cast<const T*>(part.data());
      if (partner < rank_) {
        for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(in[i], data[i]);
      } else {
        for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(data[i], in[i]);
      }
    }
  }

  /// Flat allreduce: linear reduce to rank 0 (ascending-rank fold), then
  /// rank 0 posts the result to everyone by refcount bump.
  template <typename T, typename Op>
  void allreduce_linear_(std::span<T> data, Op op, int tag) {
    const int p = size();
    if (p == 1) return;
    if (rank_ != 0) {
      coll_send<T>(0, tag, std::span<const T>{data.data(), data.size()});
      const PayloadBuffer res = recv_buffer(0, tag);
      PEACHY_CHECK(res.size() == data.size() * sizeof(T), "allreduce: result size mismatch");
      if (!res.empty()) std::memcpy(data.data(), res.data(), res.size());
      return;
    }
    for (int r = 1; r < p; ++r) {
      const PayloadBuffer part = recv_buffer(r, tag);
      PEACHY_CHECK(part.size() == data.size() * sizeof(T),
                   "allreduce: contribution size mismatch");
      const T* in = reinterpret_cast<const T*>(part.data());
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = op(data[i], in[i]);
    }
    PayloadBuffer buf = BufferPool::instance().acquire(data.size() * sizeof(T));
    if (!data.empty()) std::memcpy(buf.mutable_data(), data.data(), buf.size());
    for (int r = 1; r < p; ++r) {
      machine_->post_move(world_rank(), to_world(r), tag, buf.share(), comm_id_);
    }
  }

  // raw send that bypasses the user-tag validation (collectives use tags
  // >= kInternalTagBase).
  template <typename T>
  void coll_send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    machine_->post(world_rank(), to_world(dest), tag, std::as_bytes(data), comm_id_);
  }
  template <typename T>
  void coll_send(int dest, int tag, const std::vector<T>& data) {
    coll_send<T>(dest, tag, std::span<const T>{data.data(), data.size()});
  }

  /// Sub-communicator constructor (shrink's result).
  Comm(detail::Machine& machine, int rank, std::vector<int> group, std::uint32_t comm_id,
       std::uint64_t timeout_ns) noexcept
      : machine_{&machine},
        rank_{rank},
        group_{std::move(group)},
        comm_id_{comm_id},
        timeout_ns_{timeout_ns} {}

  [[nodiscard]] int to_world(int local) const noexcept {
    return group_.empty() ? local : group_[static_cast<std::size_t>(local)];
  }
  [[nodiscard]] int to_local(int world) const noexcept {
    if (group_.empty()) return world;
    for (std::size_t i = 0; i < group_.size(); ++i) {
      if (group_[i] == world) return static_cast<int>(i);
    }
    return world;  // unreachable: comm-id matching admits group members only
  }

  /// Timeout validation shared by set_op_timeout and the one-shot timed
  /// receives: negative deadlines are rejected loudly (std::invalid_argument
  /// carrying the caller's name and the offending value) instead of the
  /// old silent clamp to "wait forever".
  static std::uint64_t checked_timeout_ns(std::chrono::nanoseconds t, const char* who) {
    if (t.count() < 0) {
      throw std::invalid_argument{std::string{who} + ": negative timeout (" +
                                  std::to_string(t.count()) +
                                  " ns) would silently mean \"wait forever\""};
    }
    return static_cast<std::uint64_t>(t.count());
  }

  /// The single receive path: validates the local source, translates to
  /// world numbering, applies the communicator's op timeout, and localizes
  /// the matched message's source on the way out.
  detail::Message take_(int source, int tag, const std::size_t* exact_bytes = nullptr) {
    return take_timed_(source, tag, timeout_ns_, exact_bytes);
  }
  detail::Message take_timed_(int source, int tag, std::uint64_t timeout_ns,
                              const std::size_t* exact_bytes = nullptr) {
    PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
                 "recv: bad source rank");
    detail::Message m =
        machine_->take(world_rank(), source == kAnySource ? kAnySource : to_world(source), tag,
                       comm_id_, timeout_ns, group_.empty() ? nullptr : &group_, exact_bytes);
    m.source = to_local(m.source);
    return m;
  }

  detail::Machine* machine_;
  int rank_;
  std::vector<int> group_;      ///< empty = world communicator (identity map)
  std::uint32_t comm_id_ = 0;
  std::uint64_t timeout_ns_ = 0;
  std::uint64_t shrink_seq_ = 0;  ///< agreement-key counter for shrink()
  std::uint64_t coll_seq_ = 0;
};

/// Check level `run()` applies when none is requested.  `CheckLevel::off`
/// in normal builds; grading builds configured with -DPEACHY_ANALYSIS=ON
/// check every run at `CheckLevel::full` with no code changes.
[[nodiscard]] constexpr analysis::CheckLevel default_check_level() noexcept {
#if defined(PEACHY_ANALYSIS) && PEACHY_ANALYSIS
  return analysis::CheckLevel::full;
#else
  return analysis::CheckLevel::off;
#endif
}

/// Knobs for one run() beyond the check level.
struct RunOptions {
  analysis::CheckLevel check = default_check_level();
  /// Fault plan to inject.  nullptr falls back to the `PEACHY_FAULTS`
  /// environment plan (if any); pass a plan explicitly for tests.
  const faults::FaultPlan* plan = nullptr;
  /// Default deadline for every blocking op, inherited by every Comm
  /// (0 falls back to `PEACHY_MPI_TIMEOUT_MS`, else blocks forever).
  std::uint64_t op_timeout_ns = 0;
  /// If non-null, receives the injector's canonical fired-event log after
  /// the run (empty when no plan was active) — the replay-determinism
  /// artifact that scripts/check.sh diffs across reruns.
  std::string* fault_log = nullptr;
  /// Tunables snapshot for this run (collective algorithm selection).
  /// nullptr uses the process-wide tune::active() profile — which is the
  /// compiled-in defaults unless PEACHY_TUNE named a loadable profile.
  const tune::Tunables* tunables = nullptr;
  /// Message-movement backend.  kDefault defers to PEACHY_TRANSPORT
  /// (unset → inproc).  Inside a launched world the launcher's wire
  /// always wins — every process of one world must speak the same
  /// transport — and requesting a different one is a named error.
  TransportKind transport = TransportKind::kDefault;
};

/// Execute `fn(comm)` on `nranks` rank-threads; blocks until all complete.
/// If any rank throws, the machine aborts (waking blocked receivers) and
/// the first exception is rethrown here.  Returns aggregate traffic stats.
///
/// With a check level other than `off`, checker diagnoses (deadlock,
/// collective mismatch, message leak) are thrown as analysis::CheckFailure.
///
/// A rank that dies of an injected crash (faults::RankKilled) does NOT
/// abort the machine: the rank is retired, its peers observe the failure
/// as faults::RankFailedError, and the run's outcome is whatever the
/// survivors make of it — which is how recovery becomes demonstrable.
TrafficStats run(int nranks, const std::function<void(Comm&)>& fn,
                 analysis::CheckLevel level = default_check_level());

/// run() with fault-tolerance knobs (fault plan, default op deadline).
TrafficStats run(int nranks, const std::function<void(Comm&)>& fn, const RunOptions& opts);

/// Result of a checked execution: traffic stats plus the checker's report.
struct CheckedRun {
  TrafficStats stats;
  analysis::Report report;
};

/// Like run(), but collects the checker's findings instead of throwing
/// them: if the report is not clean, the findings *are* the outcome and
/// any secondary exception (e.g. "machine aborted") is swallowed.  User
/// exceptions from runs with a clean report are rethrown as usual.  This
/// is the grading entry point: feed it a student's rank function and
/// inspect / print the report.
CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn,
                       analysis::CheckLevel level = analysis::CheckLevel::full);

/// run_checked() with fault-tolerance knobs — lets tests inspect how the
/// checker classified an injected failure (opts.check below `full` is
/// raised to `full`).
CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn, RunOptions opts);

}  // namespace peachy::mpi
