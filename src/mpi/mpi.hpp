#pragma once
/// \file mpi.hpp
/// \brief mini-MPI: a message-passing runtime with MPI semantics.
///
/// The paper's kNN, k-means, and HPO assignments are written against MPI.
/// This container has no MPI implementation, so peachy provides one whose
/// *programming model* is faithful: ranks with private data, explicit
/// tagged point-to-point messages, and the collectives the assignments use
/// (barrier, bcast, scatter, gather, allgather, reduce, allreduce,
/// alltoall).  Ranks execute as OS threads inside one process; message
/// payloads are copied through mailboxes, never shared, so all the
/// ordering/matching hazards of real MPI code are preserved.
///
/// Collectives are implemented *on top of point-to-point* with the
/// classic algorithms (dissemination barrier, binomial-tree bcast/reduce,
/// ring allgather), so the runtime's message/byte counters have the same
/// shape as a real MPI trace — several experiments report them.
///
/// Usage:
///   auto stats = peachy::mpi::run(4, [](peachy::mpi::Comm& comm) {
///     std::vector<double> part = comm.scatter_blocks<double>(all, /*root=*/0);
///     double local = work(part);
///     std::vector<double> total = comm.allreduce<double>({&local, 1}, std::plus<>{});
///   });

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "analysis/mpi_checker.hpp"
#include "analysis/report.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"

namespace peachy::mpi {

/// Wildcards for recv matching (analogues of MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Metadata of a received message (analogue of MPI_Status).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Aggregate traffic counters for one run().
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

namespace detail {

struct Message {
  int source;
  int tag;
  std::vector<std::byte> payload;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
  /// This mailbox's queue-depth gauge name ("mpi.queue[r]"), interned
  /// via obs::intern_name so the pointer outlives the Machine — trace
  /// export happens after short-lived Machines are destroyed.
  const char* trace_name = "mpi.queue[?]";
};

/// Shared state for one group of ranks.  When constructed with a
/// CheckLevel other than `off` it owns an analysis::MpiChecker that is fed
/// post/block/exit/collective events and can abort the machine with a
/// diagnosis (deadlock, collective mismatch) instead of hanging.
class Machine {
 public:
  explicit Machine(int nranks, analysis::CheckLevel check = analysis::CheckLevel::off);

  void post(int source, int dest, int tag, std::span<const std::byte> payload);
  Message take(int self, int source, int tag);
  bool try_peek(int self, int source, int tag, Status& st);

  void abort(const std::string& why);
  [[nodiscard]] int size() const noexcept { return static_cast<int>(boxes_.size()); }
  [[nodiscard]] TrafficStats stats() const noexcept;
  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  // ---- checker integration (no-ops when the check level is `off`) ----------

  /// Validate rank's `index`-th collective against the other ranks'
  /// records; aborts and throws analysis::CheckFailure on mismatch.
  void note_collective(int rank, std::uint64_t index, const analysis::CollectiveDesc& d);

  /// Rank's program function returned normally; may detect that the
  /// remaining ranks are deadlocked (and abort them).
  void note_exit(int rank);

  /// Report every message still undelivered (call after all ranks joined).
  void scan_leaks();

  [[nodiscard]] analysis::Report report() const;
  [[nodiscard]] analysis::CheckLevel check_level() const noexcept {
    return checker_ ? checker_->level() : analysis::CheckLevel::off;
  }

 private:
  static bool matches(const Message& m, int source, int tag) noexcept {
    return (source == kAnySource || m.source == source) && (tag == kAnyTag || m.tag == tag);
  }

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::unique_ptr<analysis::MpiChecker> checker_;
  std::atomic<bool> aborted_{false};
  std::string abort_reason_;
  std::mutex abort_mu_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace detail

/// Communicator handle passed to every rank's function.  All methods are
/// callable from that rank's thread only.
class Comm {
 public:
  Comm(detail::Machine& machine, int rank) noexcept : machine_{&machine}, rank_{rank} {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return machine_->size(); }

  // ---- point to point ----------------------------------------------------

  /// Buffered send: copies the payload into dest's mailbox; never blocks.
  void send_bytes(int dest, int tag, std::span<const std::byte> payload) {
    PEACHY_CHECK(dest >= 0 && dest < size(), "send: bad destination rank");
    PEACHY_CHECK(tag >= 0 && tag < kInternalTagBase,
                 "send: user tags must be in [0, 2^30)");
    machine_->post(rank_, dest, tag, payload);
  }

  /// Blocking receive matching (source, tag); wildcards allowed.
  std::vector<std::byte> recv_bytes(int source, int tag, Status* st = nullptr) {
    detail::Message m = machine_->take(rank_, source, tag);
    if (st != nullptr) *st = Status{m.source, m.tag, m.payload.size()};
    return std::move(m.payload);
  }

  /// Non-blocking probe: true if a matching message is waiting.
  bool probe(int source, int tag, Status* st = nullptr) {
    Status tmp;
    const bool ok = machine_->try_peek(rank_, source, tag, tmp);
    if (ok && st != nullptr) *st = tmp;
    return ok;
  }

  /// Typed send of a span of trivially copyable elements.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(data));
  }

  /// Typed send of one value.
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    send<T>(dest, tag, std::span<const T>{&v, 1});
  }

  /// Typed receive: returns however many elements the sender sent.
  template <typename T>
  std::vector<T> recv(int source, int tag, Status* st = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw = recv_bytes(source, tag, st);
    PEACHY_CHECK(raw.size() % sizeof(T) == 0, "recv: payload size not a multiple of sizeof(T)");
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  }

  /// Typed receive of exactly one value.
  template <typename T>
  T recv_value(int source, int tag, Status* st = nullptr) {
    std::vector<T> v = recv<T>(source, tag, st);
    PEACHY_CHECK(v.size() == 1, "recv_value: expected exactly one element");
    return v.front();
  }

  // ---- collectives ---------------------------------------------------------
  // Every rank of the communicator must call each collective in the same
  // order (as in MPI).  Internal tags are sequenced per call so distinct
  // collectives cannot cross-match.

  /// Dissemination barrier: ceil(log2 p) rounds of pairwise tokens.
  void barrier();

  /// Binomial-tree broadcast of a byte buffer from `root`.
  void broadcast_bytes(std::vector<std::byte>& data, int root);

  /// Typed broadcast: after the call every rank holds root's vector.
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> raw;
    if (rank_ == root) {
      raw.resize(data.size() * sizeof(T));
      std::memcpy(raw.data(), data.data(), raw.size());
    }
    broadcast_bytes(raw, root);
    if (rank_ != root) {
      PEACHY_CHECK(raw.size() % sizeof(T) == 0, "broadcast: size mismatch");
      data.resize(raw.size() / sizeof(T));
      std::memcpy(data.data(), raw.data(), raw.size());
    }
  }

  /// Typed broadcast of one value.
  template <typename T>
  [[nodiscard]] T broadcast_value(T v, int root) {
    std::vector<T> buf{v};
    broadcast(buf, root);
    return buf.front();
  }

  /// Binomial-tree reduction with element-wise op; result valid at root
  /// only (other ranks get an empty vector).  `op(a,b)` must be
  /// commutative and associative.
  template <typename T, typename Op>
  std::vector<T> reduce(std::span<const T> local, Op op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int tag = begin_collective({"reduce", root, sizeof(T),
                                      static_cast<std::int64_t>(local.size())});
    const int p = size();
    std::vector<T> acc(local.begin(), local.end());
    const int vrank = (rank_ - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if ((vrank & mask) == 0) {
        const int vsrc = vrank | mask;
        if (vsrc < p) {
          const int src = (vsrc + root) % p;
          std::vector<T> part = recv<T>(src, tag);
          PEACHY_CHECK(part.size() == acc.size(), "reduce: contribution size mismatch");
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = op(acc[i], part[i]);
        }
      } else {
        const int dest = ((vrank & ~mask) + root) % p;
        coll_send<T>(dest, tag, acc);
        return {};
      }
      mask <<= 1;
    }
    return acc;  // only reached by root
  }

  /// Reduce-then-broadcast allreduce; every rank gets the combined vector.
  template <typename T, typename Op>
  std::vector<T> allreduce(std::span<const T> local, Op op) {
    std::vector<T> total = reduce<T, Op>(local, op, 0);
    broadcast(total, 0);
    return total;
  }

  /// Allreduce of one value.
  template <typename T, typename Op>
  [[nodiscard]] T allreduce_value(T v, Op op) {
    return allreduce<T, Op>(std::span<const T>{&v, 1}, op).front();
  }

  /// Gather variable-size contributions; root receives the concatenation
  /// in rank order (gatherv semantics).  Non-root ranks get {}.
  template <typename T>
  std::vector<T> gather(std::span<const T> local, int root) {
    const int tag = begin_collective({"gather", root, sizeof(T), -1});
    if (rank_ != root) {
      coll_send<T>(root, tag, local);
      return {};
    }
    std::vector<std::vector<T>> parts(size());
    parts[rank_].assign(local.begin(), local.end());
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      parts[r] = recv<T>(r, tag);
    }
    std::vector<T> all;
    for (auto& p : parts) all.insert(all.end(), p.begin(), p.end());
    return all;
  }

  /// Ring allgather of variable-size contributions: p−1 rounds, each rank
  /// forwarding the block it received in the previous round.  Returns the
  /// concatenation in rank order on every rank.
  template <typename T>
  std::vector<T> allgather(std::span<const T> local) {
    const int tag = begin_collective({"allgather", -1, sizeof(T), -1});
    const int p = size();
    std::vector<std::vector<T>> blocks(p);
    blocks[rank_].assign(local.begin(), local.end());
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      const int send_block = (rank_ - step + p) % p;
      const int recv_block = (rank_ - step - 1 + p) % p;
      coll_send<T>(right, tag, blocks[send_block]);
      blocks[recv_block] = recv<T>(left, tag);
    }
    std::vector<T> all;
    for (auto& b : blocks) all.insert(all.end(), b.begin(), b.end());
    return all;
  }

  /// Scatter near-even static blocks of root's vector; returns this
  /// rank's block (OpenMP/Chapel block-partition rule).
  template <typename T>
  std::vector<T> scatter_blocks(std::span<const T> all, int root) {
    const int tag = begin_collective(
        {"scatter", root, sizeof(T),
         rank_ == root ? static_cast<std::int64_t>(all.size()) : std::int64_t{-1}});
    const int p = size();
    if (rank_ == root) {
      const std::size_t n = all.size();
      std::vector<T> mine;
      for (int r = 0; r < p; ++r) {
        const auto blk = support::static_block(n, p, static_cast<std::size_t>(r));
        std::span<const T> piece = all.subspan(blk.begin, blk.end - blk.begin);
        if (r == root) {
          mine.assign(piece.begin(), piece.end());
        } else {
          coll_send<T>(r, tag, piece);
        }
      }
      return mine;
    }
    return recv<T>(root, tag);
  }

  /// All-to-all of variable-size buffers: sendbufs[r] goes to rank r;
  /// returns recvbufs where recvbufs[r] came from rank r (alltoallv).
  template <typename T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& sendbufs) {
    PEACHY_CHECK(static_cast<int>(sendbufs.size()) == size(),
                 "alltoall: need one send buffer per rank");
    const int tag = begin_collective({"alltoall", -1, sizeof(T), -1});
    const int p = size();
    std::vector<std::vector<T>> recvbufs(p);
    recvbufs[rank_] = sendbufs[rank_];
    // Buffered sends never block, so post all sends then drain receives.
    for (int k = 1; k < p; ++k) {
      const int dest = (rank_ + k) % p;
      coll_send<T>(dest, tag, sendbufs[dest]);
    }
    for (int k = 1; k < p; ++k) {
      const int src = (rank_ - k + p) % p;
      recvbufs[src] = recv<T>(src, tag);
    }
    return recvbufs;
  }

  /// Traffic counters of the whole machine so far.
  [[nodiscard]] TrafficStats traffic() const noexcept { return machine_->stats(); }

  /// Number of collectives this rank has entered so far.
  [[nodiscard]] std::uint64_t collective_seq() const noexcept { return coll_seq_; }

  /// Test/debug hook: jump the collective sequence counter (must be called
  /// identically on every rank, outside any in-flight collective).  Used
  /// by regression tests that exercise the tag-space boundary.
  void debug_set_collective_seq(std::uint64_t seq) noexcept { coll_seq_ = seq; }

 private:
  // Internal tags live above the user tag space and advance per collective
  // call; ranks call collectives in identical order so the tags agree.
  // The sequence is never wrapped: wrapping could alias a live tag in a
  // long-running program and cross-match two distinct collectives, so the
  // full 2^30 tag values above the base are used and exhaustion is a hard
  // error instead of a silent hazard.
  static constexpr int kInternalTagBase = analysis::kMpiInternalTagBase;
  static constexpr std::uint64_t kInternalSeqLimit = (std::uint64_t{1} << 30) - 1;
  int next_internal_tag() {
    PEACHY_CHECK(coll_seq_ <= kInternalSeqLimit,
                 "collective sequence space exhausted (2^30 collectives in one run)");
    return kInternalTagBase + static_cast<int>(coll_seq_++);
  }

  /// Allocate the collective's tag and (when checking is on) validate the
  /// call against the other ranks' collective sequences.
  int begin_collective(const analysis::CollectiveDesc& d) {
    const std::uint64_t index = coll_seq_;
    const int tag = next_internal_tag();
    machine_->note_collective(rank_, index, d);
    return tag;
  }

  // raw send that bypasses the user-tag validation (collectives use tags
  // >= kInternalTagBase).
  template <typename T>
  void coll_send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    machine_->post(rank_, dest, tag, std::as_bytes(data));
  }
  template <typename T>
  void coll_send(int dest, int tag, const std::vector<T>& data) {
    coll_send<T>(dest, tag, std::span<const T>{data.data(), data.size()});
  }

  detail::Machine* machine_;
  int rank_;
  std::uint64_t coll_seq_ = 0;
};

/// Check level `run()` applies when none is requested.  `CheckLevel::off`
/// in normal builds; grading builds configured with -DPEACHY_ANALYSIS=ON
/// check every run at `CheckLevel::full` with no code changes.
[[nodiscard]] constexpr analysis::CheckLevel default_check_level() noexcept {
#if defined(PEACHY_ANALYSIS) && PEACHY_ANALYSIS
  return analysis::CheckLevel::full;
#else
  return analysis::CheckLevel::off;
#endif
}

/// Execute `fn(comm)` on `nranks` rank-threads; blocks until all complete.
/// If any rank throws, the machine aborts (waking blocked receivers) and
/// the first exception is rethrown here.  Returns aggregate traffic stats.
///
/// With a check level other than `off`, checker diagnoses (deadlock,
/// collective mismatch, message leak) are thrown as analysis::CheckFailure.
TrafficStats run(int nranks, const std::function<void(Comm&)>& fn,
                 analysis::CheckLevel level = default_check_level());

/// Result of a checked execution: traffic stats plus the checker's report.
struct CheckedRun {
  TrafficStats stats;
  analysis::Report report;
};

/// Like run(), but collects the checker's findings instead of throwing
/// them: if the report is not clean, the findings *are* the outcome and
/// any secondary exception (e.g. "machine aborted") is swallowed.  User
/// exceptions from runs with a clean report are rethrown as usual.  This
/// is the grading entry point: feed it a student's rank function and
/// inspect / print the report.
CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn,
                       analysis::CheckLevel level = analysis::CheckLevel::full);

}  // namespace peachy::mpi
