#pragma once
/// \file launch.hpp
/// \brief Multi-process world launching and rendezvous (DESIGN.md §15).
///
/// `launch()` forks/execs N rank processes and wires the rendezvous a
/// wire transport needs before any rank can talk:
///
///   * every child gets `PEACHY_RANK`, `PEACHY_NRANKS`, and
///     `PEACHY_TRANSPORT` in its environment;
///   * socket: each child additionally gets a pipe pair by fd number
///     (`PEACHY_RDZV_UP` / `PEACHY_RDZV_DOWN`).  The child binds an
///     ephemeral loopback port, writes it up; the launcher gathers all
///     N ports and writes the full table down to every child;
///   * shm: the launcher creates the segment up front and passes its
///     name (`PEACHY_SHM`).
///
/// The launcher then reaps children.  A child that dies to a signal is
/// tolerated (that is the fault-tolerance story working); for the shm
/// backend — which has no EOF to observe — the launcher doubles as the
/// failure detector and posts a `kFailed` frame into every survivor's
/// ring the moment it reaps a signal death.
///
/// Inside a child, `launch_info()` exposes the parsed rendezvous
/// environment; `mpi::run` uses it to force the launcher's transport
/// and to spawn a rank thread only for the local rank.

#include <string>
#include <vector>

#include <sys/types.h>

#include "mpi/transport.hpp"

namespace peachy::mpi {

/// The rendezvous environment of a launched rank process (all defaults
/// when the process was not spawned by `launch()`).
struct LaunchInfo {
  bool launched = false;
  int rank = 0;
  int nranks = 1;
  TransportKind kind = TransportKind::kInproc;
  std::string shm_name;  ///< shm segment to attach (kShm only)
  int up_fd = -1;        ///< write end toward the launcher (kSocket only)
  int down_fd = -1;      ///< read end from the launcher (kSocket only)
};

/// Parsed once from the environment on first call.
[[nodiscard]] const LaunchInfo& launch_info();

struct LaunchOptions {
  int nranks = 2;
  TransportKind kind = TransportKind::kSocket;  ///< kShm or kSocket
};

struct ProcStatus {
  int rank = -1;
  pid_t pid = -1;
  bool exited = false;    ///< normal exit (code in exit_code)
  int exit_code = 0;
  bool signaled = false;  ///< killed by a signal (number in sig)
  int sig = 0;
};

struct LaunchResult {
  std::vector<ProcStatus> procs;  ///< indexed by rank
  int clean = 0;    ///< exited with status 0
  int nonzero = 0;  ///< exited with a nonzero status
  int killed = 0;   ///< died to a signal (e.g. an injected SIGKILL)

  /// Every process exited cleanly — no signal deaths, no error exits.
  [[nodiscard]] bool all_clean() const noexcept { return clean == static_cast<int>(procs.size()); }
};

/// Fork/exec `args` (args[0] is the program path) once per rank and
/// reap them all.  Signal deaths are recorded, not errors — the caller
/// decides what survival means.
[[nodiscard]] LaunchResult launch(const LaunchOptions& opts, const std::vector<std::string>& args);

/// Relaunch *this* program (via /proc/self/exe) with its own argv plus
/// `extra_args`.  The canonical way for an example to go multi-process:
/// the parent calls launch_self, each child sees launch_info().launched
/// and runs its single rank.
[[nodiscard]] LaunchResult launch_self(const LaunchOptions& opts, int argc, char** argv,
                                       const std::vector<std::string>& extra_args = {});

}  // namespace peachy::mpi
