#include "mpi/launch.hpp"

#include <array>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string_view>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include "mpi/shm_ring.hpp"
#include "mpi/wire.hpp"
#include "support/check.hpp"

extern char** environ;

namespace peachy::mpi {

namespace {

constexpr const char* kEnvRank = "PEACHY_RANK";
constexpr const char* kEnvNranks = "PEACHY_NRANKS";
constexpr const char* kEnvTransport = "PEACHY_TRANSPORT";
constexpr const char* kEnvShm = "PEACHY_SHM";
constexpr const char* kEnvUp = "PEACHY_RDZV_UP";
constexpr const char* kEnvDown = "PEACHY_RDZV_DOWN";

[[nodiscard]] int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr || *v == '\0' ? fallback : std::atoi(v);
}

[[nodiscard]] bool write_full(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

[[nodiscard]] bool read_full(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF: the peer died before finishing rendezvous
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

/// The launcher's copy of the environment with every peachy rendezvous
/// key stripped, so a child never inherits a stale half of a previous
/// rendezvous alongside its own.
[[nodiscard]] std::vector<std::string> base_environment() {
  std::vector<std::string> env;
  for (char** e = environ; *e != nullptr; ++e) {
    const std::string_view entry{*e};
    bool ours = false;
    for (const char* key : {kEnvRank, kEnvNranks, kEnvTransport, kEnvShm, kEnvUp, kEnvDown}) {
      const std::size_t len = std::strlen(key);
      if (entry.size() > len && entry.compare(0, len, key) == 0 && entry[len] == '=') {
        ours = true;
        break;
      }
    }
    if (!ours) env.emplace_back(entry);
  }
  return env;
}

LaunchResult launch_impl(const LaunchOptions& opts, const std::string& exec_path,
                         const std::vector<std::string>& args) {
  PEACHY_CHECK(!launch_info().launched,
               "mpi::launch: nested launch from inside a launched rank process");
  PEACHY_CHECK(opts.nranks > 0, "mpi::launch: nranks must be positive");
  PEACHY_CHECK(opts.kind == TransportKind::kShm || opts.kind == TransportKind::kSocket,
               "mpi::launch: only the wire transports (shm, socket) can span processes");
  PEACHY_CHECK(!args.empty(), "mpi::launch: empty argv");
  const int n = opts.nranks;
  const bool socket = opts.kind == TransportKind::kSocket;

  // The shm world's segment exists before any child runs; children
  // attach by name.  The launcher keeps its own mapping for posting
  // failure frames while reaping.
  detail::ShmView shm;
  std::string shm_name;
  if (!socket) {
    shm_name = "/peachy." + std::to_string(getpid());
    shm = detail::shm_create(shm_name, n, detail::kShmSpillBytes);
  }

  // Socket rendezvous pipes, all CLOEXEC: each child re-enables exactly
  // its own pair between fork and exec, so a sibling's death can never
  // hold a pipe open and stall the launcher's reads.
  std::vector<std::array<int, 2>> up(static_cast<std::size_t>(n), {-1, -1});
  std::vector<std::array<int, 2>> down(static_cast<std::size_t>(n), {-1, -1});
  if (socket) {
    for (int r = 0; r < n; ++r) {
      PEACHY_CHECK(pipe2(up[static_cast<std::size_t>(r)].data(), O_CLOEXEC) == 0 &&
                       pipe2(down[static_cast<std::size_t>(r)].data(), O_CLOEXEC) == 0,
                   "mpi::launch: pipe2 failed (" + std::string{std::strerror(errno)} + ")");
    }
  }

  // Everything a child needs is materialized before fork: env blocks
  // and argv pointer tables (no allocation between fork and exec).
  const std::vector<std::string> base_env = base_environment();
  std::vector<std::vector<std::string>> child_env(static_cast<std::size_t>(n));
  std::vector<std::vector<char*>> child_envp(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    auto& env = child_env[static_cast<std::size_t>(r)];
    env = base_env;
    env.push_back(std::string{kEnvRank} + "=" + std::to_string(r));
    env.push_back(std::string{kEnvNranks} + "=" + std::to_string(n));
    env.push_back(std::string{kEnvTransport} + "=" + transport_name(opts.kind));
    if (socket) {
      env.push_back(std::string{kEnvUp} + "=" +
                    std::to_string(up[static_cast<std::size_t>(r)][1]));
      env.push_back(std::string{kEnvDown} + "=" +
                    std::to_string(down[static_cast<std::size_t>(r)][0]));
    } else {
      env.push_back(std::string{kEnvShm} + "=" + shm_name);
    }
    auto& envp = child_envp[static_cast<std::size_t>(r)];
    for (std::string& e : env) envp.push_back(e.data());
    envp.push_back(nullptr);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  std::vector<pid_t> pids(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    const pid_t pid = fork();
    PEACHY_CHECK(pid >= 0, "mpi::launch: fork failed (" + std::string{std::strerror(errno)} + ")");
    if (pid == 0) {
      if (socket) {
        fcntl(up[static_cast<std::size_t>(r)][1], F_SETFD, 0);
        fcntl(down[static_cast<std::size_t>(r)][0], F_SETFD, 0);
      }
      execve(exec_path.c_str(), argv.data(), child_envp[static_cast<std::size_t>(r)].data());
      _exit(127);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }
  if (socket) {
    for (int r = 0; r < n; ++r) {
      close(up[static_cast<std::size_t>(r)][1]);
      close(down[static_cast<std::size_t>(r)][0]);
    }
  }

  // Socket rendezvous: gather every child's listener port, then write
  // the full table to every child.  A child dying mid-rendezvous (EOF)
  // aborts the launch: injected faults fire inside mpi::run, which
  // starts only after rendezvous, so this is a genuine spawn failure.
  bool rendezvous_ok = true;
  if (socket) {
    std::vector<std::uint16_t> ports(static_cast<std::size_t>(n), 0);
    for (int r = 0; r < n && rendezvous_ok; ++r) {
      rendezvous_ok =
          read_full(up[static_cast<std::size_t>(r)][0], &ports[static_cast<std::size_t>(r)], 2);
    }
    // A child can die between sending its port and reading the table;
    // EPIPE on that write must not kill the launcher.
    struct sigaction ign{}, saved{};
    ign.sa_handler = SIG_IGN;
    sigaction(SIGPIPE, &ign, &saved);
    if (rendezvous_ok) {
      for (int r = 0; r < n && rendezvous_ok; ++r) {
        rendezvous_ok = write_full(down[static_cast<std::size_t>(r)][1], ports.data(),
                                   sizeof(std::uint16_t) * static_cast<std::size_t>(n));
      }
    }
    sigaction(SIGPIPE, &saved, nullptr);
    for (int r = 0; r < n; ++r) {
      close(up[static_cast<std::size_t>(r)][0]);
      close(down[static_cast<std::size_t>(r)][1]);
    }
    if (!rendezvous_ok) {
      for (const pid_t pid : pids) kill(pid, SIGKILL);
    }
  }

  // Reap.  For shm worlds the launcher is the failure detector: a
  // signal death is announced to every still-running survivor's ring
  // right away, so they shrink while the launcher keeps waiting.
  //
  // PEACHY_LAUNCH_REAP_MS > 0 arms straggler reaping: once any child has
  // exited, remaining children that produce no further exits for that
  // many milliseconds are SIGKILLed.  This exists for the wedged-rank
  // scenario (heartbeat e2e): survivors detect a SIGSTOPped peer,
  // shrink, finish, and exit — but the wedged child would park the
  // launcher in waitpid forever.  With no exits yet the timer is idle,
  // so a slow world start is never killed.
  const int reap_ms = env_int("PEACHY_LAUNCH_REAP_MS", 0);
  LaunchResult res;
  res.procs.resize(static_cast<std::size_t>(n));
  std::map<pid_t, int> rank_of;
  for (int r = 0; r < n; ++r) rank_of[pids[static_cast<std::size_t>(r)]] = r;
  std::vector<bool> reaped(static_cast<std::size_t>(n), false);
  int idle_ms = 0;
  bool any_exit = false;
  for (int remaining = n; remaining > 0;) {
    int st = 0;
    pid_t pid = -1;
    if (reap_ms > 0) {
      pid = waitpid(-1, &st, WNOHANG);
      if (pid == 0) {
        constexpr int kPollMs = 10;
        if (any_exit) {
          idle_ms += kPollMs;
          if (idle_ms > reap_ms) {
            for (int r = 0; r < n; ++r) {
              if (!reaped[static_cast<std::size_t>(r)]) {
                kill(pids[static_cast<std::size_t>(r)], SIGKILL);
              }
            }
            idle_ms = 0;  // the kills produce exits; reap them normally
          }
        }
        usleep(kPollMs * 1000);
        continue;
      }
    } else {
      pid = waitpid(-1, &st, 0);
    }
    if (pid < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const auto it = rank_of.find(pid);
    if (it == rank_of.end()) continue;  // some other child of the caller
    any_exit = true;
    idle_ms = 0;
    const int r = it->second;
    ProcStatus& ps = res.procs[static_cast<std::size_t>(r)];
    ps.rank = r;
    ps.pid = pid;
    if (WIFEXITED(st)) {
      ps.exited = true;
      ps.exit_code = WEXITSTATUS(st);
      (ps.exit_code == 0 ? res.clean : res.nonzero)++;
    } else if (WIFSIGNALED(st)) {
      ps.signaled = true;
      ps.sig = WTERMSIG(st);
      ++res.killed;
      if (!socket) {
        // Order matters: publish the death to the segment's dead_mask
        // first, so a consumer wedged on the victim's half-written slot
        // can prove the hole is dead and skip it — only then post the
        // kFailed frames that ride the rings behind any such hole.
        detail::shm_mark_dead(shm, r);
        detail::FrameHeader h = detail::make_ctrl_header(
            detail::WireKind::kFailed, 0, r, 0);
        detail::seal_frame(h, nullptr);
        for (int peer = 0; peer < n; ++peer) {
          if (peer == r || reaped[static_cast<std::size_t>(peer)]) continue;
          (void)detail::ring_push(shm, peer, detail::kShmLauncherProc, h, nullptr);
        }
      }
    }
    reaped[static_cast<std::size_t>(r)] = true;
    --remaining;
  }

  if (!socket) {
    detail::shm_detach(shm);
    shm_unlink(shm_name.c_str());
  }
  PEACHY_CHECK(rendezvous_ok, "mpi::launch: a rank process died during rendezvous");
  return res;
}

}  // namespace

const LaunchInfo& launch_info() {
  static const LaunchInfo info = [] {
    LaunchInfo li;
    const char* rank = std::getenv(kEnvRank);
    if (rank == nullptr || *rank == '\0') return li;
    li.launched = true;
    li.rank = std::atoi(rank);
    li.nranks = env_int(kEnvNranks, 1);
    const char* kind = std::getenv(kEnvTransport);
    li.kind = parse_transport(kind == nullptr ? "" : kind);
    PEACHY_CHECK(li.kind == TransportKind::kShm || li.kind == TransportKind::kSocket,
                 "launch_info: PEACHY_RANK is set but PEACHY_TRANSPORT is not a wire transport");
    if (const char* shm = std::getenv(kEnvShm); shm != nullptr) li.shm_name = shm;
    li.up_fd = env_int(kEnvUp, -1);
    li.down_fd = env_int(kEnvDown, -1);
    PEACHY_CHECK(li.rank >= 0 && li.rank < li.nranks,
                 "launch_info: PEACHY_RANK out of range for PEACHY_NRANKS");
    return li;
  }();
  return info;
}

LaunchResult launch(const LaunchOptions& opts, const std::vector<std::string>& args) {
  PEACHY_CHECK(!args.empty(), "mpi::launch: empty argv");
  return launch_impl(opts, args[0], args);
}

LaunchResult launch_self(const LaunchOptions& opts, int argc, char** argv,
                         const std::vector<std::string>& extra_args) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + extra_args.size());
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  for (const std::string& a : extra_args) args.push_back(a);
  return launch_impl(opts, "/proc/self/exe", args);
}

}  // namespace peachy::mpi
