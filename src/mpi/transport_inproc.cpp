#include "mpi/transport.hpp"

namespace peachy::mpi::detail {

namespace {

/// The historical pooled path: `send` hands the message to the sink on
/// the calling thread — one refcount move, zero copies, synchronous
/// delivery.  All ranks share this process, so there is no failure
/// detection and nothing to broadcast: the machine's local protocols
/// already cover every rank.
class InprocTransport final : public Transport {
 public:
  explicit InprocTransport(const TransportConfig& cfg) : sink_{cfg.sink} {}

  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kInproc; }
  [[nodiscard]] bool spans_processes() const noexcept override { return false; }
  [[nodiscard]] bool is_local(int) const noexcept override { return true; }

  void send(int dest, Message&& m, int copies) override {
    if (sink_ != nullptr) sink_->deliver(dest, std::move(m), copies);
  }

  void broadcast_ctrl(CtrlKind, std::uint32_t, const std::string&) override {}

  void shutdown() override { sink_ = nullptr; }

 private:
  TransportSink* sink_;
};

}  // namespace

std::unique_ptr<Transport> make_inproc_transport(const TransportConfig& cfg) {
  return std::make_unique<InprocTransport>(cfg);
}

}  // namespace peachy::mpi::detail
