#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <ctime>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

#include "faults/detect.hpp"
#include "faults/faults.hpp"
#include "faults/plan.hpp"
#include "faults/retry.hpp"
#include "mpi/frame_router.hpp"
#include "mpi/launch.hpp"
#include "mpi/transport.hpp"
#include "mpi/wire.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::mpi::detail {

namespace {

/// Ceiling on frames gathered into one sendmsg: 2 iovecs per frame
/// (header + payload) keeps the batch far under IOV_MAX everywhere.
constexpr std::size_t kBatchFrames = 64;
/// Outbound queue caps per peer — the backpressure that used to come
/// from blocking inside send(2) now comes from waiting on the channel.
constexpr std::size_t kMaxQueuedFrames = 1024;
constexpr std::size_t kMaxQueuedBytes = std::size_t{4} << 20;
/// Inbound drain chunk.  Big enough that a bandwidth test's worth of
/// small frames arrives in a handful of read syscalls.
constexpr std::size_t kReadChunk = std::size_t{256} << 10;

void count(const char* name, std::int64_t delta) noexcept {
  if (obs::enabled()) {
    obs::counter(name).add(delta);
  }
}

/// One process-wide endpoint: a loopback listener, one *ordered*
/// outbound connection per peer process (frames carry source/dest
/// ranks, so a process pair needs only one stream each way), and a
/// single pump thread that accepts, reassembles, and routes inbound
/// frames.  Persists across Machines — the FrameRouter scopes frames
/// to machine generations (frame_router.hpp).
///
/// Send path: a *combining writer* per peer.  Senders enqueue
/// {header, payload-handle} pairs (no copy — the payload handle shares
/// the pooled slab) and the first sender to find the channel idle
/// becomes its drainer: it gathers up to kBatchFrames queued frames
/// into one sendmsg scatter list (header iovec + payload iovec each)
/// and writes them in a single syscall, looping until the queue is
/// empty.  Senders that arrive while a drainer is active just enqueue
/// and return — their frames coalesce into the drainer's next batch, so
/// a burst of small sends costs ~1 syscall, not N — and wait only when
/// the queue caps are hit (backpressure).
///
/// Failure mapping: EOF or ECONNRESET on a peer's connection *without*
/// a prior kBye frame means the process died; the pump reports it to
/// the router, which poisons the corresponding rank for the current and
/// all future machines.  A kBye (sent at endpoint teardown, flushed
/// through the queue before the fds close) makes the EOF a clean
/// departure.  Writes to a dead or departed peer are dropped silently —
/// the sender learns of the death through the failure path, exactly
/// like sends to a crashed in-process rank.
///
/// In an un-launched process the endpoint still runs the full frame
/// path through a self-connection: every send is serialized, pumped,
/// and reassembled, so single-process shm/socket runs exercise the
/// real wire.
class SocketEndpoint {
 public:
  static SocketEndpoint& instance() {
    // Touch the pool first: it must outlive the endpoint, whose pump
    // builds pooled messages until static teardown.
    (void)BufferPool::instance();
    static SocketEndpoint ep;
    return ep;
  }

  void ensure_started() {
    std::lock_guard lock{start_mu_};
    if (started_) return;
    const LaunchInfo& li = launch_info();
    launched_ = li.launched;
    my_proc_ = li.launched ? li.rank : 0;
    nprocs_ = li.launched ? li.nranks : 1;
    bye_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(nprocs_));

    // Listener on an ephemeral loopback port.
    // The listener is nonblocking: the pump's accept loop drains it until
    // EAGAIN, and a blocking listener would wedge the pump inside accept4
    // instead of returning to poll.
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    PEACHY_CHECK(listen_fd_ >= 0, "socket transport: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    PEACHY_CHECK(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0,
                 "socket transport: bind to 127.0.0.1 failed (" +
                     std::string{std::strerror(errno)} + ")");
    PEACHY_CHECK(listen(listen_fd_, 128) == 0, "socket transport: listen failed");
    socklen_t alen = sizeof addr;
    PEACHY_CHECK(getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen) == 0,
                 "socket transport: getsockname failed");
    const std::uint16_t my_port = ntohs(addr.sin_port);

    // Rendezvous: my port up to the launcher, the full table back down.
    std::vector<std::uint16_t> ports(static_cast<std::size_t>(nprocs_), my_port);
    if (launched_) {
      PEACHY_CHECK(li.up_fd >= 0 && li.down_fd >= 0,
                   "socket transport: launched but the rendezvous pipes are missing");
      PEACHY_CHECK(write_full(li.up_fd, &my_port, sizeof my_port),
                   "socket transport: rendezvous write to the launcher failed");
      PEACHY_CHECK(read_full(li.down_fd, ports.data(),
                             sizeof(std::uint16_t) * static_cast<std::size_t>(nprocs_)),
                   "socket transport: rendezvous read from the launcher failed");
      close(li.up_fd);
      close(li.down_fd);
    }

    // Heartbeat failure detector (faults/detect.hpp): launched
    // multi-process worlds only.  Set up before the pump starts — the
    // pump thread owns last_rx_/mon_ from here on.
    hb_ = faults::HeartbeatConfig::from_env(launched_, nprocs_);
    if (hb_.enabled()) {
      last_rx_ = std::make_unique<std::uint64_t[]>(static_cast<std::size_t>(nprocs_));
      mon_.emplace(nprocs_, hb_);
    }

    // The pump must be accepting before we dial out: every process
    // connects to every other (and to itself) at the same time.
#if defined(__linux__)
    wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    PEACHY_CHECK(wake_fd_ >= 0, "socket transport: eventfd failed");
#else
    int pipefd[2];
    PEACHY_CHECK(pipe(pipefd) == 0, "socket transport: pipe failed");
    wake_fd_ = pipefd[0];
    wake_write_fd_ = pipefd[1];
#endif
    // Channels exist (fd = -1) before the pump runs: its heartbeat tick
    // touches out_[p] and must never race the allocation.
    out_ = std::make_unique<OutChannel[]>(static_cast<std::size_t>(nprocs_));
    pump_ = std::thread{[this] { pump_main(); }};

    for (int p = 0; p < nprocs_; ++p) {
      out_[static_cast<std::size_t>(p)].fd = dial_peer(p, ports[static_cast<std::size_t>(p)]);
      const FrameHeader hello = make_ctrl_header(WireKind::kHello, 0, my_proc_, 0);
      send_frame(p, hello, PayloadBuffer{});
    }
    started_ = true;
  }

  /// Connect to peer `p`, retrying transient refusals with bounded
  /// backoff.  Every process dials every other the moment the port table
  /// arrives; a peer whose accept queue briefly overflows (or that is a
  /// beat behind in its own startup) answers ECONNREFUSED — one attempt
  /// is not a verdict.  Exhaustion raises RendezvousError naming the
  /// rank and port, not a bare errno.
  int dial_peer(int p, std::uint16_t port) {
    const faults::RetryPolicy policy{/*max_attempts=*/8, /*base_delay_ns=*/5'000'000,
                                     /*multiplier=*/2.0, /*jitter=*/0.1,
                                     /*seed=*/static_cast<std::uint64_t>(p) + 1};
    int last_err = 0;
    try {
      return policy.run([&] {
        const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        PEACHY_CHECK(fd >= 0, "socket transport: socket() failed");
        sockaddr_in peer{};
        peer.sin_family = AF_INET;
        peer.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        peer.sin_port = htons(port);
        int rc;
        do {
          rc = connect(fd, reinterpret_cast<sockaddr*>(&peer), sizeof peer);
        } while (rc != 0 && errno == EINTR);
        if (rc == 0) {
          const int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          return fd;
        }
        last_err = errno;
        close(fd);  // a failed connect poisons the socket; dial fresh next try
        if (last_err == ECONNREFUSED || last_err == EAGAIN || last_err == ETIMEDOUT ||
            last_err == ECONNRESET) {
          throw faults::TransientError{"connect refused"};
        }
        PEACHY_CHECK(false, "socket transport: connect to rank " + std::to_string(p) +
                                " (port " + std::to_string(port) + ") failed (" +
                                std::string{std::strerror(last_err)} + ")");
        return -1;  // unreachable: PEACHY_CHECK(false) throws
      });
    } catch (const faults::TransientError&) {
      throw faults::RendezvousError{
          "socket transport: connect to rank " + std::to_string(p) + " (port " +
          std::to_string(port) + ") still failing after " +
          std::to_string(policy.max_attempts()) + " attempts (" +
          std::string{std::strerror(last_err)} + ")"};
    }
  }

  [[nodiscard]] FrameRouter& router() noexcept { return router_; }
  [[nodiscard]] bool launched() const noexcept { return launched_; }
  [[nodiscard]] int nprocs() const noexcept { return nprocs_; }
  [[nodiscard]] int my_proc() const noexcept { return my_proc_; }
  [[nodiscard]] int proc_of(int rank) const noexcept { return launched_ ? rank : 0; }

  /// Enqueue one frame on `proc`'s stream; the payload handle keeps the
  /// bytes alive until they hit the wire.  FIFO order per channel and a
  /// single drainer at a time preserve whole-frame atomicity.  A write
  /// failure means the peer is gone: the connection is retired and —
  /// absent a goodbye — the death is reported; queued frames are
  /// dropped.
  ///
  /// The header is taken by value: this is the wire boundary, so the
  /// seeded wire-fault injector (plan.hpp) gets to mutate, duplicate, or
  /// drop the frame here, and the CRC seal is computed over whatever
  /// actually goes out.
  void send_frame(int proc, FrameHeader h, PayloadBuffer payload) {
    int copies = 1;
    std::size_t wire_len = static_cast<std::size_t>(h.bytes);
    if (faults::WireInjector* wi = faults::wire::injector(); wi != nullptr) {
      const int src = static_cast<WireKind>(h.kind) == WireKind::kData
                          ? h.source
                          : my_proc_;
      const faults::WireAction act = wi->on_frame(src, proc, static_cast<int>(h.kind));
      if (act.any()) {
        if (act.delay_ns != 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds{act.delay_ns});
        }
        if (act.drop) return;
        // Seal over the true content first; corruption then damages a
        // well-formed frame, exactly what the receiver's CRC must catch.
        seal_frame(h, payload.data());
        if (act.corrupt) {
          if (h.bytes == 0) {
            h.crc ^= 1;
          } else {
            // The payload handle may share a slab with other in-flight
            // copies; corrupt a private copy, not the caller's bytes.
            PayloadBuffer dirty = BufferPool::instance().acquire(
                static_cast<std::size_t>(h.bytes));
            std::memcpy(dirty.mutable_data(), payload.data(),
                        static_cast<std::size_t>(h.bytes));
            const std::size_t mid = static_cast<std::size_t>(h.bytes) / 2;
            dirty.mutable_data()[mid] ^= std::byte{0x01};
            payload = std::move(dirty);
          }
        }
        if (act.truncate) {
          // Short-write the payload but leave h.bytes intact: the stream
          // desyncs and the receiver must detect it via magic/CRC.
          wire_len = static_cast<std::size_t>(h.bytes) / 2;
        }
        if (act.duplicate) copies = 2;
        enqueue_frames(proc, h, std::move(payload), wire_len, copies);
        return;
      }
    }
    seal_frame(h, payload.data());
    enqueue_frames(proc, h, std::move(payload), wire_len, copies);
  }

  void enqueue_frames(int proc, const FrameHeader& h, PayloadBuffer payload,
                      std::size_t wire_len, int copies) {
    OutChannel& ch = out_[static_cast<std::size_t>(proc)];
    std::unique_lock lk{ch.mu};
    if (ch.fd < 0) return;
    while (ch.writing &&
           (ch.q.size() >= kMaxQueuedFrames || ch.queued_bytes >= kMaxQueuedBytes)) {
      ch.cv.wait(lk);
      if (ch.fd < 0) return;
    }
    for (int c = 0; c < copies; ++c) {
      ch.q.push_back(OutFrame{h, c + 1 < copies ? payload.share() : std::move(payload),
                              wire_len});
      ch.queued_bytes += static_cast<std::size_t>(h.bytes);
    }
    if (ch.writing) return;  // an active drainer will gather this frame
    ch.writing = true;
    drain(proc, ch, lk);
    ch.writing = false;
    lk.unlock();
    ch.cv.notify_all();
  }

 private:
  SocketEndpoint() = default;

  ~SocketEndpoint() {
    if (!started_) return;
    const FrameHeader bye = make_ctrl_header(WireKind::kBye, 0, my_proc_, 0);
    for (int p = 0; p < nprocs_; ++p) send_frame(p, bye, PayloadBuffer{});
    // The byes ride the queues; wait for every channel to flush so no
    // peer sees EOF-before-goodbye and reports us dead.
    for (int p = 0; p < nprocs_; ++p) {
      OutChannel& ch = out_[static_cast<std::size_t>(p)];
      std::unique_lock lk{ch.mu};
      ch.cv.wait(lk, [&ch] { return ch.fd < 0 || (ch.q.empty() && !ch.writing); });
    }
    stop_.store(true);
    wake_pump();
    pump_.join();
    for (int p = 0; p < nprocs_; ++p) {
      OutChannel& ch = out_[static_cast<std::size_t>(p)];
      if (ch.fd >= 0) close(ch.fd);
    }
    close(listen_fd_);
    close(wake_fd_);
#if !defined(__linux__)
    close(wake_write_fd_);
#endif
  }

  struct OutFrame {
    FrameHeader h;
    PayloadBuffer payload;
    /// Payload bytes actually written to the wire.  Equal to h.bytes
    /// except under injected wire_truncate, where the short write
    /// deliberately desyncs the stream.
    std::size_t wire_len = 0;
  };

  struct OutChannel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutFrame> q;
    std::size_t queued_bytes = 0;
    bool writing = false;  ///< a drainer owns the fd
    int fd = -1;
  };

  struct Conn {
    int fd = -1;
    int proc = -1;  ///< learned from the kHello frame
    bool bye = false;
    bool closed = false;
    std::vector<std::byte> buf;  ///< reassembly buffer (partial tails only)
  };

  void wake_pump() noexcept {
#if defined(__linux__)
    const std::uint64_t one = 1;
    (void)!write(wake_fd_, &one, sizeof one);
#else
    const char w = 0;
    (void)!write(wake_write_fd_, &w, 1);
#endif
  }

  /// Gather-write every frame queued on `ch` and any that arrive while
  /// we drain.  Called with `lk` held and `ch.writing == true`; unlocks
  /// around the actual syscalls so senders keep enqueueing (that is the
  /// coalescing) and re-locks before touching queue state again.
  void drain(int proc, OutChannel& ch, std::unique_lock<std::mutex>& lk) {
    std::vector<OutFrame> batch;
    std::vector<iovec> iov;
    while (!ch.q.empty()) {
      batch.clear();
      iov.clear();
      const std::size_t take = std::min(ch.q.size(), kBatchFrames);
      for (std::size_t i = 0; i < take; ++i) {
        ch.queued_bytes -= static_cast<std::size_t>(ch.q.front().h.bytes);
        batch.push_back(std::move(ch.q.front()));
        ch.q.pop_front();
      }
      const int fd = ch.fd;
      lk.unlock();
      ch.cv.notify_all();  // room freed — release any backpressured sender
      for (OutFrame& f : batch) {
        iov.push_back(iovec{&f.h, sizeof(FrameHeader)});
        if (f.wire_len != 0) {
          iov.push_back(iovec{const_cast<std::byte*>(f.payload.data()), f.wire_len});
        }
      }
      const bool ok = sendmsg_all(fd, iov.data(), iov.size());
      count("mpi.transport.sock.frames", static_cast<std::int64_t>(batch.size()));
      lk.lock();
      if (!ok) {
        fail_channel_locked(proc, ch, "connection reset");
        return;
      }
    }
  }

  /// Retire a channel whose peer is dead or unreachable and report the
  /// death (unless it said goodbye).  Requires ch.mu held; safe only
  /// when no *other* drainer owns the fd.
  void fail_channel_locked(int proc, OutChannel& ch, const char* why) {
    if (ch.fd >= 0) {
      close(ch.fd);
      ch.fd = -1;
    }
    ch.q.clear();
    ch.queued_bytes = 0;
    ch.cv.notify_all();
    if (launched_ && !bye_[static_cast<std::size_t>(proc)].load()) {
      router_.peer_failed(static_cast<std::uint32_t>(proc),
                          "rank " + std::to_string(proc) + "'s process died (" +
                              std::string{why} + ")");
    }
  }

  /// Channel teardown for a heartbeat-confirmed-dead peer.  If a drainer
  /// is mid-sendmsg to the corpse, shutdown() unsticks it — the blocked
  /// write fails and the drainer's own failure path finishes cleanup.
  void retire_channel(int p) {
    OutChannel& ch = out_[static_cast<std::size_t>(p)];
    std::unique_lock lk{ch.mu};
    if (ch.fd >= 0) {
      if (ch.writing) {
        ::shutdown(ch.fd, SHUT_RDWR);
      } else {
        close(ch.fd);
        ch.fd = -1;
        ch.q.clear();
        ch.queued_bytes = 0;
      }
    }
    lk.unlock();
    ch.cv.notify_all();
  }

  static std::uint64_t monotonic_ns() noexcept {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

  /// Fire one sealed kPing at `p` without ever blocking the pump.  Only
  /// an *idle* channel is pinged — queued data already proves to the
  /// peer that we are alive, and an active drainer owns the fd.
  void send_ping(int p) {
    OutChannel& ch = out_[static_cast<std::size_t>(p)];
    std::unique_lock lk{ch.mu, std::try_to_lock};
    if (!lk.owns_lock()) return;  // a sender owns the channel — data is the heartbeat
    if (ch.fd < 0 || ch.writing || !ch.q.empty()) return;
    FrameHeader ping = make_ctrl_header(WireKind::kPing, 0, my_proc_, 0);
    seal_frame(ping, nullptr);
    const char* bytes = reinterpret_cast<const char*>(&ping);
    std::size_t off = 0;
    int spins = 0;
    while (off < sizeof ping) {
      const ssize_t w =
          ::send(ch.fd, bytes + off, sizeof ping - off, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (w > 0) {
        off += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (off == 0) return;  // no buffer room at all — skip this beat whole-frame
        // Mid-frame stall: a half-written header must not stay on the
        // stream.  A peer that cannot absorb 48 bytes has megabytes of
        // unread data sitting in its buffers — the wedged-rank
        // signature — so give it a brief grace, then retire it.
        if (++spins > 200) {
          fail_channel_locked(p, ch, "heartbeat write stalled (send buffer full)");
          return;
        }
        ::usleep(10);
        continue;
      }
      fail_channel_locked(p, ch, "connection reset");
      return;
    }
    count("mpi.transport.heartbeat.ping_tx", 1);
  }

  /// One beat, pump thread only: ping every live peer's idle channel,
  /// fold each peer's inbound last-alive stamp into the monitor, and
  /// turn confirmed silence into the same peer_failed path a connection
  /// reset takes — so a SIGKILLed *or wedged* rank is detected even
  /// when its sockets are still technically open.
  void heartbeat_tick() {
    if (now_ns_ < next_beat_ns_) return;
    next_beat_ns_ = now_ns_ + hb_.interval_ns();
    for (int p = 0; p < nprocs_; ++p) {
      if (p == my_proc_ || bye_[static_cast<std::size_t>(p)].load()) continue;
      send_ping(p);
      const std::uint64_t rx = last_rx_[static_cast<std::size_t>(p)];
      if (rx != 0) mon_->alive(p, rx);
      if (mon_->check(p, now_ns_) == faults::HeartbeatMonitor::Verdict::kConfirmed) {
        const std::uint64_t silent_ms = rx != 0 ? (now_ns_ - rx) / 1'000'000 : 0;
        retire_channel(p);
        router_.peer_failed(static_cast<std::uint32_t>(p),
                            "rank " + std::to_string(p) +
                                "'s process went silent: no heartbeat for " +
                                std::to_string(silent_ms) + "ms (peer-to-peer detection)");
      }
    }
  }

  /// Scatter-gather write of the whole iovec list, resuming after
  /// partial writes.  MSG_NOSIGNAL: a dying peer must surface as EPIPE,
  /// not kill the process.
  static bool sendmsg_all(int fd, iovec* iov, std::size_t cnt) {
    while (cnt > 0) {
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = cnt;
      ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      count("mpi.transport.sock.writev", 1);
      while (cnt > 0 && static_cast<std::size_t>(w) >= iov[0].iov_len) {
        w -= static_cast<ssize_t>(iov[0].iov_len);
        ++iov;
        --cnt;
      }
      if (cnt > 0 && w > 0) {
        iov[0].iov_base = static_cast<char*>(iov[0].iov_base) + w;
        iov[0].iov_len -= static_cast<std::size_t>(w);
      }
    }
    return true;
  }

  static bool write_full(int fd, const void* buf, std::size_t n) {
    const char* p = static_cast<const char*>(buf);
    while (n > 0) {
      const ssize_t w = ::write(fd, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
    return true;
  }

  static bool read_full(int fd, void* buf, std::size_t n) {
    char* p = static_cast<char*>(buf);
    while (n > 0) {
      const ssize_t r = ::read(fd, p, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (r == 0) return false;
      p += r;
      n -= static_cast<std::size_t>(r);
    }
    return true;
  }

  void dispatch(Conn& conn, const FrameHeader& h, const std::byte* payload) {
    if (!frame_crc_ok(h, payload)) {
      count("mpi.transport.crc_fail", 1);
      // Data frames are droppable: the protocol above recovers from a
      // lost message (timeout/retry) but not from a corrupted one.  The
      // sticky, idempotent control kinds (kFailed/kRevoke/kBye) must
      // never be silently swallowed — deliver them even damaged; a
      // repeat or a stale arg is harmless, a missed one wedges recovery.
      if (static_cast<WireKind>(h.kind) == WireKind::kData) return;
    }
    switch (static_cast<WireKind>(h.kind)) {
      case WireKind::kHello:
        conn.proc = h.source;
        break;
      case WireKind::kBye:
        conn.bye = true;
        if (conn.proc >= 0) bye_[static_cast<std::size_t>(conn.proc)].store(true);
        break;
      case WireKind::kData:
        router_.route_data(h.seq, h.dest, frame_to_message(h, payload));
        break;
      case WireKind::kFailed:
        router_.peer_failed(static_cast<std::uint32_t>(h.source),
                            "rank " + std::to_string(h.source) + "'s process died");
        break;
      case WireKind::kRevoke:
        router_.route_ctrl(h.seq, CtrlKind::kRevoke, h.comm, {});
        break;
      case WireKind::kAbort:
        router_.route_ctrl(h.seq, CtrlKind::kAbort, 0,
                           std::string{reinterpret_cast<const char*>(payload),
                                       static_cast<std::size_t>(h.bytes)});
        break;
      case WireKind::kPing:
        // Heartbeat: carries no routing — receiving it (any frame, in
        // fact) refreshes the sender's last-alive stamp below.
        break;
    }
    if (conn.proc >= 0 && hb_.enabled()) {
      last_rx_[static_cast<std::size_t>(conn.proc)] = now_ns_;
    }
  }

  void on_conn_gone(Conn& conn, const char* why) {
    conn.closed = true;
    if (launched_ && conn.proc >= 0 && conn.proc != my_proc_ && !conn.bye) {
      router_.peer_failed(static_cast<std::uint32_t>(conn.proc),
                          "rank " + std::to_string(conn.proc) + "'s process died (" + why + ")");
    }
    close(conn.fd);
  }

  /// A header that fails the magic (or claims an absurd payload) means
  /// the byte stream has desynced — a truncated or garbled frame
  /// upstream.  Unlike a payload CRC miss, there is no way to find the
  /// next frame boundary, so the connection itself is unrecoverable.
  static void check_header(const FrameHeader& h) {
    if (h.magic != kWireMagic) {
      throw faults::WireIntegrityError{
          "socket transport: bad frame magic on the wire (stream desync)"};
    }
    if (h.bytes > (std::uint64_t{1} << 40)) {
      throw faults::WireIntegrityError{
          "socket transport: frame claims " + std::to_string(h.bytes) +
          " payload bytes (corrupt length)"};
    }
  }

  /// Parse complete frames out of [data, data+n); returns the number of
  /// bytes consumed (a partial frame tail stays unconsumed).
  std::size_t parse_frames(Conn& conn, const std::byte* data, std::size_t n) {
    std::size_t off = 0;
    while (n - off >= sizeof(FrameHeader)) {
      FrameHeader h;
      std::memcpy(&h, data + off, sizeof h);
      check_header(h);
      if (n - off < sizeof h + h.bytes) break;
      dispatch(conn, h, data + off + sizeof h);
      ++frames_this_wake_;
      off += sizeof h + static_cast<std::size_t>(h.bytes);
    }
    return off;
  }

  /// Move just enough of [data, data+n) into conn.buf to complete the
  /// partial frame carried over from the previous read, dispatch it, and
  /// return the number of bytes taken.  Never copies past the pending
  /// frame's end — the rest of the chunk is parsed in place by the
  /// caller.
  std::size_t complete_tail(Conn& conn, const std::byte* data, std::size_t n) {
    std::size_t taken = 0;
    if (conn.buf.size() < sizeof(FrameHeader)) {
      const std::size_t want = std::min(sizeof(FrameHeader) - conn.buf.size(), n);
      conn.buf.insert(conn.buf.end(), data, data + want);
      taken = want;
      if (conn.buf.size() < sizeof(FrameHeader)) return taken;  // header still partial
    }
    FrameHeader h;
    std::memcpy(&h, conn.buf.data(), sizeof h);
    check_header(h);
    const std::size_t total = sizeof h + static_cast<std::size_t>(h.bytes);
    const std::size_t want = std::min(total - conn.buf.size(), n - taken);
    conn.buf.insert(conn.buf.end(), data + taken, data + taken + want);
    taken += want;
    if (conn.buf.size() < total) return taken;  // payload still partial
    dispatch(conn, h, conn.buf.data() + sizeof h);
    ++frames_this_wake_;
    conn.buf.clear();
    return taken;
  }

  /// Drain everything readable on `conn` in kReadChunk slabs.  Complete
  /// frames are parsed straight out of the read staging buffer; only a
  /// partial tail is carried over in conn.buf — steady-state traffic is
  /// dispatched with zero reassembly copies, and a carried-over tail
  /// copies only its own completion bytes, not the whole next chunk.
  void read_conn(Conn& conn) {
    for (;;) {
      const ssize_t r = ::read(conn.fd, stage_.data(), stage_.size());
      if (r > 0) {
        count("mpi.transport.sock.reads", 1);
        std::size_t n = static_cast<std::size_t>(r);
        const std::byte* data = stage_.data();
        try {
          if (!conn.buf.empty()) {
            const std::size_t taken = complete_tail(conn, data, n);
            data += taken;
            n -= taken;
          }
          if (conn.buf.empty() && n != 0) {
            const std::size_t used = parse_frames(conn, data, n);
            if (used < n) conn.buf.assign(data + used, data + n);
          }
        } catch (const faults::WireIntegrityError& e) {
          // The stream has desynced; the connection is beyond repair.
          // Retire it and — absent a goodbye — report the peer failed,
          // so the error feeds the same revoke/shrink machinery as a
          // death.  Never PEACHY_CHECK here: an injected truncation must
          // not bring the *receiver* down.
          count("mpi.transport.crc_fail", 1);
          on_conn_gone(conn, e.what());
          break;
        }
        if (static_cast<std::size_t>(r) < stage_.size()) break;  // short read — socket drained
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      on_conn_gone(conn, "connection closed without goodbye");  // EOF or hard error
      break;
    }
  }

  void pump_main() {
    stage_.resize(kReadChunk);
    std::vector<Conn> conns;
    std::vector<pollfd> fds;
    // With heartbeats on, poll must wake at least once per beat even
    // when the wires are silent.
    const int poll_ms =
        hb_.enabled()
            ? static_cast<int>(std::min<std::uint64_t>(200, hb_.interval_ns() / 1'000'000))
            : 200;
    while (!stop_.load()) {
      fds.clear();
      fds.push_back(pollfd{wake_fd_, POLLIN, 0});
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      for (const Conn& c : conns) fds.push_back(pollfd{c.fd, POLLIN, 0});
      const int rc = poll(fds.data(), fds.size(), poll_ms);
      if (rc < 0 && errno != EINTR) break;
      if (stop_.load()) break;
      if (hb_.enabled()) {
        now_ns_ = monotonic_ns();
        heartbeat_tick();
      }
      if (rc <= 0) continue;
      if ((fds[0].revents & POLLIN) != 0) {
#if defined(__linux__)
        std::uint64_t drain = 0;
        (void)!read(wake_fd_, &drain, sizeof drain);
#else
        char drain[16];
        (void)!read(wake_fd_, drain, sizeof drain);
#endif
      }
      if ((fds[1].revents & POLLIN) != 0) {
        for (;;) {
          const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;
          conns.push_back(Conn{fd, -1, false, false, {}});
        }
      }
      // The pollfd list was built from the same vector in the same
      // order; entry i+2 is conns[i].  New conns join next iteration.
      frames_this_wake_ = 0;
      for (std::size_t i = 0; i + 2 < fds.size(); ++i) {
        if ((fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR)) != 0) read_conn(conns[i]);
      }
      if (frames_this_wake_ != 0 && obs::enabled()) {
        static obs::Histogram& hist = obs::histogram("mpi.transport.sock.pump_batch");
        hist.note(frames_this_wake_);
      }
      std::erase_if(conns, [](const Conn& c) { return c.closed; });
    }
    for (const Conn& c : conns) close(c.fd);
  }

  std::mutex start_mu_;
  bool started_ = false;
  bool launched_ = false;
  int my_proc_ = 0;
  int nprocs_ = 1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
#if !defined(__linux__)
  int wake_write_fd_ = -1;
#endif
  std::unique_ptr<OutChannel[]> out_;
  std::unique_ptr<std::atomic<bool>[]> bye_;
  std::vector<std::byte> stage_;     ///< pump-thread read staging buffer
  std::uint64_t frames_this_wake_ = 0;
  faults::HeartbeatConfig hb_;
  std::optional<faults::HeartbeatMonitor> mon_;  ///< pump-thread only
  std::unique_ptr<std::uint64_t[]> last_rx_;     ///< pump-thread only; ns of last inbound frame per proc
  std::uint64_t now_ns_ = 0;                     ///< pump-thread clock cache
  std::uint64_t next_beat_ns_ = 0;
  FrameRouter router_;
  std::atomic<bool> stop_{false};
  std::thread pump_;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(const TransportConfig& cfg) : ep_{SocketEndpoint::instance()} {
    ep_.ensure_started();
    if (ep_.launched()) {
      PEACHY_CHECK(cfg.nranks == ep_.nprocs(),
                   "socket transport: a launched world runs one rank per process, so "
                   "mpi::run(nranks=" +
                       std::to_string(cfg.nranks) + ") must match the " +
                       std::to_string(ep_.nprocs()) + " launched processes");
    }
    seq_ = ep_.router().attach(cfg.sink);
  }

  ~SocketTransport() override { shutdown(); }

  [[nodiscard]] TransportKind kind() const noexcept override { return TransportKind::kSocket; }
  [[nodiscard]] bool spans_processes() const noexcept override {
    return ep_.launched() && ep_.nprocs() > 1;
  }
  [[nodiscard]] bool is_local(int rank) const noexcept override {
    return !ep_.launched() || rank == ep_.my_proc();
  }

  void send(int dest, Message&& m, int copies) override {
    const FrameHeader h = make_data_header(seq_, m, dest);
    const int proc = ep_.proc_of(dest);
    for (int c = 0; c < copies; ++c) ep_.send_frame(proc, h, m.payload.share());
  }

  void broadcast_ctrl(CtrlKind k, std::uint32_t arg, const std::string& why) override {
    if (!spans_processes()) return;
    FrameHeader h;
    PayloadBuffer payload;
    switch (k) {
      case CtrlKind::kFailed:
        h = make_ctrl_header(WireKind::kFailed, seq_, static_cast<std::int32_t>(arg), 0);
        break;
      case CtrlKind::kRevoke:
        h = make_ctrl_header(WireKind::kRevoke, seq_, ep_.my_proc(), arg);
        break;
      case CtrlKind::kAbort:
        h = make_ctrl_header(WireKind::kAbort, seq_, ep_.my_proc(), 0, why.size());
        payload = BufferPool::instance().acquire(why.size());
        if (!why.empty()) std::memcpy(payload.mutable_data(), why.data(), why.size());
        break;
    }
    for (int p = 0; p < ep_.nprocs(); ++p) {
      if (p != ep_.my_proc()) ep_.send_frame(p, h, payload.share());
    }
  }

  void shutdown() override {
    if (attached_) {
      attached_ = false;
      ep_.router().detach(seq_);
    }
  }

 private:
  SocketEndpoint& ep_;
  std::uint32_t seq_ = 0;
  bool attached_ = true;
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(const TransportConfig& cfg) {
  return std::make_unique<SocketTransport>(cfg);
}

}  // namespace peachy::mpi::detail
