#include <atomic>
#include <thread>

#include "mpi/mpi.hpp"

namespace peachy::mpi {

namespace detail {

Machine::Machine(int nranks) {
  PEACHY_CHECK(nranks >= 1, "machine needs at least one rank");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

void Machine::post(int source, int dest, int tag, std::span<const std::byte> payload) {
  PEACHY_CHECK(dest >= 0 && dest < size(), "post: bad destination");
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock{box.mu};
    Message m;
    m.source = source;
    m.tag = tag;
    m.payload.assign(payload.begin(), payload.end());
    box.queue.push_back(std::move(m));
  }
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  box.cv.notify_all();
}

Message Machine::take(int self, int source, int tag) {
  PEACHY_CHECK(self >= 0 && self < size(), "take: bad rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::unique_lock lock{box.mu};
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        return m;
      }
    }
    if (aborted_.load(std::memory_order_acquire)) {
      std::lock_guard alock{abort_mu_};
      throw Error{"mpi machine aborted while rank " + std::to_string(self) +
                  " was blocked in recv: " + abort_reason_};
    }
    // Wait with a timeout so an abort raised after our scan is noticed.
    box.cv.wait_for(lock, std::chrono::milliseconds{5});
  }
}

bool Machine::try_peek(int self, int source, int tag, Status& st) {
  PEACHY_CHECK(self >= 0 && self < size(), "probe: bad rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard lock{box.mu};
  for (const auto& m : box.queue) {
    if (matches(m, source, tag)) {
      st = Status{m.source, m.tag, m.payload.size()};
      return true;
    }
  }
  return false;
}

void Machine::abort(const std::string& why) {
  {
    std::lock_guard lock{abort_mu_};
    if (!aborted_.load(std::memory_order_acquire)) abort_reason_ = why;
  }
  aborted_.store(true, std::memory_order_release);
  for (auto& box : boxes_) box->cv.notify_all();
}

TrafficStats Machine::stats() const noexcept {
  return {messages_.load(std::memory_order_relaxed), bytes_.load(std::memory_order_relaxed)};
}

}  // namespace detail

void Comm::barrier() {
  const int tag = next_internal_tag();
  const int p = size();
  const std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int dest = (rank_ + dist) % p;
    const int src = (rank_ - dist + p) % p;
    // Round-distinct sub-tag: token from round k must not satisfy round k+1.
    machine_->post(rank_, dest, tag, std::span<const std::byte>{&token, 1});
    (void)recv_bytes(src, tag);
    // NOTE: dissemination rounds reuse the same tag but distinct (src,dist)
    // pairs, and recv matches on source, so rounds cannot cross-match
    // unless p is a power of two *and* two rounds share a source — which
    // cannot happen since distances are distinct powers of two < p.
  }
}

void Comm::broadcast_bytes(std::vector<std::byte>& data, int root) {
  const int tag = next_internal_tag();
  const int p = size();
  PEACHY_CHECK(root >= 0 && root < p, "broadcast: bad root");
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Receive phase: find the lowest set bit position where we get our copy.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int vsrc = vrank - mask;
      const int src = (vsrc + root) % p;
      data = recv_bytes(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to the subtree below us.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < p) {
      const int dest = (vrank + mask + root) % p;
      machine_->post(rank_, dest, tag, data);
    }
    mask >>= 1;
  }
}

TrafficStats run(int nranks, const std::function<void(Comm&)>& fn) {
  PEACHY_CHECK(nranks >= 1, "run: need at least one rank");
  PEACHY_CHECK(fn != nullptr, "run: null rank function");
  detail::Machine machine{nranks};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&machine, &fn, &err_mu, &first_error, r] {
      Comm comm{machine, r};
      try {
        fn(comm);
      } catch (...) {
        {
          std::lock_guard lock{err_mu};
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort("rank " + std::to_string(r) + " threw");
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return machine.stats();
}

}  // namespace peachy::mpi
