#include <atomic>
#include <thread>

#include "mpi/mpi.hpp"
#include "obs/obs.hpp"

namespace peachy::mpi {

namespace detail {

Machine::Machine(int nranks, analysis::CheckLevel check) {
  PEACHY_CHECK(nranks >= 1, "machine needs at least one rank");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    boxes_.back()->trace_name =
        obs::intern_name("mpi.queue[" + std::to_string(i) + "]");
  }
  if (check != analysis::CheckLevel::off) {
    checker_ = std::make_unique<analysis::MpiChecker>(nranks, check);
  }
}

void Machine::post(int source, int dest, int tag, std::span<const std::byte> payload) {
  // One memcpy into a pooled slab; the allocation is a freelist pop in
  // steady state.
  PayloadBuffer buf = BufferPool::instance().acquire(payload.size());
  if (!payload.empty()) std::memcpy(buf.mutable_data(), payload.data(), payload.size());
  if (obs::enabled()) {
    static obs::Counter& copied = obs::counter("mpi.bytes_copied");
    copied.add(static_cast<std::int64_t>(payload.size()));
  }
  post_impl(source, dest, tag, std::move(buf));
}

void Machine::post_move(int source, int dest, int tag, PayloadBuffer&& payload) {
  if (obs::enabled()) {
    static obs::Counter& moved = obs::counter("mpi.bytes_moved");
    moved.add(static_cast<std::int64_t>(payload.size()));
  }
  post_impl(source, dest, tag, std::move(payload));
}

void Machine::post_impl(int source, int dest, int tag, PayloadBuffer&& payload) {
  PEACHY_CHECK(dest >= 0 && dest < size(), "post: bad destination");
  // Reject the send side symmetrically with take(): an out-of-range
  // source would flow into Message::source and the checker's wait-for
  // graph (on_post indexes by source) exactly like the recv-side bug
  // fixed in PR 1 — make it the same named error instead.
  PEACHY_CHECK(source >= 0 && source < size(), "post: bad source rank");
  const std::size_t nbytes = payload.size();
  const obs::SpanScope span{"mpi", "post", "bytes", static_cast<std::int64_t>(nbytes)};
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock{box.mu};
    Message m;
    m.source = source;
    m.tag = tag;
    m.payload = std::move(payload);
    box.queue.push_back(std::move(m));
    // Under the same mailbox lock as the queue push, so the checker's
    // "a satisfying message arrived" flag can never lag a blocked
    // receiver's registration.
    if (checker_) checker_->on_post(source, dest, tag);
    obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
  }
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(nbytes, std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& msgs = obs::counter("mpi.messages");
    static obs::Counter& byts = obs::counter("mpi.bytes");
    msgs.add(1);
    byts.add(static_cast<std::int64_t>(nbytes));
  }
  box.cv.notify_all();
}

Message Machine::take(int self, int source, int tag) {
  PEACHY_CHECK(self >= 0 && self < size(), "take: bad rank");
  // Reject before the checker registers the wait: an out-of-range source
  // is the grading layer's own input, and must become a named error — not
  // a hang (unchecked) or an out-of-bounds wait-for-graph index (checked).
  PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
               "recv: bad source rank");
  obs::SpanScope span{"mpi", "recv"};
  std::uint64_t blocked_ns = 0;
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::unique_lock lock{box.mu};
  bool registered = false;
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        if (checker_ && registered) checker_->on_unblock(self);
        obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
        if (blocked_ns != 0) {
          span.arg("blocked_ns", static_cast<std::int64_t>(blocked_ns));
          static obs::Counter& blocked = obs::counter("mpi.recv_blocked_ns");
          blocked.add(static_cast<std::int64_t>(blocked_ns));
        }
        return m;
      }
    }
    if (aborted_.load(std::memory_order_acquire)) {
      std::lock_guard alock{abort_mu_};
      throw Error{"mpi machine aborted while rank " + std::to_string(self) +
                  " was blocked in recv(" + analysis::format_source(source) + ", " +
                  analysis::format_tag(tag) + "): " + abort_reason_};
    }
    if (checker_ && !registered) {
      registered = true;
      const auto deadlock = checker_->on_block(self, source, tag);
      if (deadlock) {
        // Wake everyone with the diagnosis; drop the mailbox lock first
        // because abort() touches every mailbox in turn.
        lock.unlock();
        abort(*deadlock);
        throw analysis::CheckFailure{*deadlock};
      }
    }
    // abort() takes the mailbox lock before notifying, so a plain wait
    // cannot miss the wakeup; spurious wakeups just rescan.
    if (obs::enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      box.cv.wait(lock);
      blocked_ns += obs::now_ns() - t0;
    } else {
      box.cv.wait(lock);
    }
  }
}

bool Machine::try_peek(int self, int source, int tag, Status& st) {
  PEACHY_CHECK(self >= 0 && self < size(), "probe: bad rank");
  PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
               "probe: bad source rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard lock{box.mu};
  for (const auto& m : box.queue) {
    if (matches(m, source, tag)) {
      st = Status{m.source, m.tag, m.payload.size()};
      return true;
    }
  }
  return false;
}

void Machine::abort(const std::string& why) {
  {
    std::lock_guard lock{abort_mu_};
    if (!aborted_.load(std::memory_order_acquire)) abort_reason_ = why;
  }
  aborted_.store(true, std::memory_order_release);
  // Acquire each mailbox lock before notifying: a receiver that checked
  // the abort flag and is between "scan found nothing" and "wait" holds
  // the lock, so this synchronizes with every waiter and reliably wakes
  // all of them (the old lock-free notify could race such a receiver into
  // a missed wakeup).
  for (auto& box : boxes_) {
    { std::lock_guard lock{box->mu}; }
    box->cv.notify_all();
  }
}

void Machine::note_collective(int rank, std::uint64_t index, const analysis::CollectiveDesc& d) {
  if (!checker_) return;
  const auto mismatch = checker_->on_collective(rank, index, d);
  if (mismatch) {
    abort(*mismatch);
    throw analysis::CheckFailure{*mismatch};
  }
}

void Machine::note_exit(int rank) {
  if (!checker_) return;
  const auto deadlock = checker_->on_exit(rank);
  // The exiting rank finished cleanly; the diagnosis is delivered to the
  // still-blocked ranks by aborting the machine.
  if (deadlock) abort(*deadlock);
}

void Machine::scan_leaks() {
  if (!checker_) return;
  for (int dest = 0; dest < size(); ++dest) {
    Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
    std::lock_guard lock{box.mu};
    for (const Message& m : box.queue) {
      checker_->note_leak(m.source, dest, m.tag, m.payload.size());
    }
  }
}

analysis::Report Machine::report() const {
  return checker_ ? checker_->report() : analysis::Report{};
}

TrafficStats Machine::stats() const noexcept {
  return {messages_.load(std::memory_order_relaxed), bytes_.load(std::memory_order_relaxed)};
}

}  // namespace detail

void Comm::barrier() {
  const int tag = begin_collective({"barrier", -1, 1, -1});
  const int p = size();
  const std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int dest = (rank_ + dist) % p;
    const int src = (rank_ - dist + p) % p;
    // Round-distinct sub-tag: token from round k must not satisfy round k+1.
    machine_->post(rank_, dest, tag, std::span<const std::byte>{&token, 1});
    (void)recv_bytes(src, tag);
    // NOTE: dissemination rounds reuse the same tag but distinct (src,dist)
    // pairs, and recv matches on source, so rounds cannot cross-match
    // unless p is a power of two *and* two rounds share a source — which
    // cannot happen since distances are distinct powers of two < p.
  }
}

void Comm::broadcast_bytes(std::vector<std::byte>& data, int root) {
  PEACHY_CHECK(root >= 0 && root < size(), "broadcast: bad root");
  const int tag = begin_collective(
      {"broadcast", root, 1,
       rank_ == root ? static_cast<std::int64_t>(data.size()) : std::int64_t{-1}});
  PayloadBuffer buf;
  if (rank_ == root) {
    buf = BufferPool::instance().acquire(data.size());
    if (!data.empty()) std::memcpy(buf.mutable_data(), data.data(), data.size());
  }
  bcast_payload(buf, root, tag);
  if (rank_ != root) data = buf.release_bytes();
}

void Comm::bcast_payload(PayloadBuffer& buf, int root, int tag) {
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Receive phase: find the lowest set bit position where we get our copy.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int vsrc = vrank - mask;
      const int src = (vsrc + root) % p;
      buf = recv_buffer(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to the subtree below us.  Forwarding is a
  // refcount bump on the pooled payload — each edge is counted as a full
  // message, but its bytes are never copied again.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < p) {
      const int dest = (vrank + mask + root) % p;
      machine_->post_move(rank_, dest, tag, buf.share());
    }
    mask >>= 1;
  }
}

namespace {

TrafficStats run_impl(int nranks, analysis::CheckLevel level,
                      const std::function<void(Comm&)>& fn, analysis::Report* out) {
  PEACHY_CHECK(nranks >= 1, "run: need at least one rank");
  PEACHY_CHECK(fn != nullptr, "run: null rank function");
  detail::Machine machine{nranks, level};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&machine, &fn, &err_mu, &first_error, r] {
      Comm comm{machine, r};
      try {
        fn(comm);
        machine.note_exit(r);
      } catch (const std::exception& e) {
        {
          std::lock_guard lock{err_mu};
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort("rank " + std::to_string(r) + " threw: " + e.what());
      } catch (...) {
        {
          std::lock_guard lock{err_mu};
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort("rank " + std::to_string(r) + " threw");
      }
    });
  }
  for (auto& t : threads) t.join();

  if (!machine.aborted()) machine.scan_leaks();
  const analysis::Report report = machine.report();
  if (out != nullptr) *out = report;

  if (first_error) {
    // In checked mode a non-clean report *is* the outcome; secondary
    // "machine aborted" errors from the other ranks are just echoes.
    const bool captured = out != nullptr && !report.clean();
    if (!captured) std::rethrow_exception(first_error);
  } else if (out == nullptr && !report.clean()) {
    // Unchecked surface: exit-time findings (leaks) become hard failures.
    throw analysis::CheckFailure{report.to_string()};
  }
  return machine.stats();
}

}  // namespace

TrafficStats run(int nranks, const std::function<void(Comm&)>& fn, analysis::CheckLevel level) {
  return run_impl(nranks, level, fn, nullptr);
}

CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn,
                       analysis::CheckLevel level) {
  CheckedRun result;
  result.stats = run_impl(nranks, level, fn, &result.report);
  return result;
}

}  // namespace peachy::mpi
