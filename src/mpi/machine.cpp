#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>

#include "mpi/mpi.hpp"
#include "obs/obs.hpp"

namespace peachy::mpi::detail {

namespace {

void sleep_ns(std::uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds{static_cast<std::int64_t>(ns)});
}

}  // namespace

Machine::Machine(int nranks, analysis::CheckLevel check, const faults::FaultPlan* plan,
                 std::uint64_t default_timeout_ns, const tune::Tunables* tunables,
                 TransportKind transport)
    : tunables_{tunables != nullptr ? tunables : &tune::active()},
      default_timeout_ns_{default_timeout_ns} {
  PEACHY_CHECK(nranks >= 1, "machine needs at least one rank");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    boxes_.back()->trace_name =
        obs::intern_name("mpi.queue[" + std::to_string(i) + "]");
  }
  failed_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    failed_[static_cast<std::size_t>(i)].store(false, std::memory_order_relaxed);
  }
  if (check != analysis::CheckLevel::off) {
    checker_ = std::make_unique<analysis::MpiChecker>(nranks, check);
  }
  if (plan != nullptr) {
    injector_ = std::make_unique<faults::FaultInjector>(*plan, nranks);
  }
  // Last: attaching to a wire endpoint can replay sticky peer-death
  // events and buffered frames into deliver()/on_ctrl() immediately, so
  // every other member must already be live.
  transport_ = make_transport({nranks, transport, this});
  wire_ = transport_->kind() != TransportKind::kInproc;
  // The checker's wait-for graph needs to see every rank's block/post
  // events; ranks in other processes feed it nothing, so its diagnoses
  // would be fabrications.  run() rejects this combination with a
  // friendlier message before construction; this is the backstop.
  PEACHY_CHECK(checker_ == nullptr || !transport_->spans_processes(),
               "machine: the correctness checker requires all ranks in one process");
}

Machine::~Machine() {
  {
    std::unique_lock lock{waiters_mu_};
    if (active_waiters_ > 0) {
      lock.unlock();
      // Poison the mailboxes so every blocked receiver wakes, throws the
      // named teardown error, and unregisters; then wait for the drain.
      // Tearing the mailboxes down under a live waiter would be a race.
      (void)abort_local("machine destroyed while ranks were still blocked in recv");
      lock.lock();
      waiters_cv_.wait(lock, [this] { return active_waiters_ == 0; });
    }
  }
  // After shutdown() the transport makes no further deliver()/on_ctrl()
  // calls (the wire backends detach under the router lock, so a delivery
  // in flight has completed before this returns).
  transport_->shutdown();
}

void Machine::post(int source, int dest, int tag, std::span<const std::byte> payload,
                   std::uint32_t comm) {
  // One memcpy into a pooled slab; the allocation is a freelist pop in
  // steady state.
  PayloadBuffer buf = BufferPool::instance().acquire(payload.size());
  if (!payload.empty()) std::memcpy(buf.mutable_data(), payload.data(), payload.size());
  if (obs::enabled()) {
    static obs::Counter& copied = obs::counter("mpi.bytes_copied");
    copied.add(static_cast<std::int64_t>(payload.size()));
  }
  post_impl(source, dest, tag, std::move(buf), comm);
}

void Machine::post_move(int source, int dest, int tag, PayloadBuffer&& payload,
                        std::uint32_t comm) {
  if (obs::enabled()) {
    static obs::Counter& moved = obs::counter("mpi.bytes_moved");
    moved.add(static_cast<std::int64_t>(payload.size()));
  }
  post_impl(source, dest, tag, std::move(payload), comm);
}

void Machine::post_impl(int source, int dest, int tag, PayloadBuffer&& payload,
                        std::uint32_t comm) {
  PEACHY_CHECK(dest >= 0 && dest < size(), "post: bad destination");
  // Reject the send side symmetrically with take(): an out-of-range
  // source would flow into Message::source and the checker's wait-for
  // graph (on_post indexes by source) exactly like the recv-side bug
  // fixed in PR 1 — make it the same named error instead.
  PEACHY_CHECK(source >= 0 && source < size(), "post: bad source rank");
  // Dead ranks cannot talk: a crashed rank that somehow reaches another
  // send (e.g. user code swallowed the unwinding exception with
  // `catch (...)`) is re-killed on the spot.
  if (any_failed() && rank_failed(source)) throw faults::RankKilled{source};
  bool duplicate = false;
  if (injector_) {
    const faults::SendAction act = injector_->on_send(source, dest, tag);
    if (act.stall_ns > 0) sleep_ns(act.stall_ns);
    if (act.crash) {
      // In a multi-process world an injected crash is a *real* process
      // death: peers must observe it through the wire's failure path
      // (EOF / launcher report), exactly as an un-injected crash would
      // look.  SIGKILL is the honest way to die — no unwinding, no
      // goodbye frame.
      if (spans_processes()) std::raise(SIGKILL);
      mark_failed(source);
      throw faults::RankKilled{source};
    }
    if (act.delay_ns > 0) sleep_ns(act.delay_ns);
    // A dropped message simply vanishes: never enqueued, never counted,
    // never shown to the checker — exactly what a lossy link looks like.
    if (act.drop) return;
    duplicate = act.duplicate;
  }
  const std::size_t nbytes = payload.size();
  const int copies = duplicate ? 2 : 1;
  const obs::SpanScope span{"mpi", "post", "bytes", static_cast<std::int64_t>(nbytes)};
  if (wire_ && checker_) {
    // Wire frames deliver asynchronously: tell the checker a message
    // exists that no mailbox holds yet, so deadlock scans in the window
    // are deferred rather than concluded from incomplete state.
    for (int c = 0; c < copies; ++c) checker_->on_wire_send();
  }
  Message m;
  m.source = source;
  m.tag = tag;
  m.comm = comm;
  m.payload = std::move(payload);
  transport_->send(dest, std::move(m), copies);
  messages_.fetch_add(static_cast<std::uint64_t>(copies), std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<std::uint64_t>(copies) * nbytes, std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& msgs = obs::counter("mpi.messages");
    static obs::Counter& byts = obs::counter("mpi.bytes");
    msgs.add(copies);
    byts.add(static_cast<std::int64_t>(copies) * static_cast<std::int64_t>(nbytes));
  }
}

void Machine::deliver(int dest, Message&& m, int copies) {
  if (dest < 0 || dest >= size()) return;  // a wire frame's dest is untrusted
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock{box.mu};
    for (int c = 0; c < copies; ++c) {
      Message msg;
      msg.source = m.source;
      msg.tag = m.tag;
      msg.comm = m.comm;
      // A duplicated message shares the payload (refcount bump): the
      // receiver sees two full deliveries, the bytes exist once.
      msg.payload = c + 1 < copies ? m.payload.share() : std::move(m.payload);
      box.queue.push_back(std::move(msg));
      // Under the same mailbox lock as the queue push, so the checker's
      // "a satisfying message arrived" flag can never lag a blocked
      // receiver's registration.
      if (checker_) checker_->on_post(m.source, dest, m.tag);
    }
    obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
  }
  box.cv.notify_all();
  if (wire_ && checker_) {
    // One frame landed; if this drained the in-flight set and a deadlock
    // scan was deferred while frames flew, it runs now — on the pump
    // thread, which never blocks on user code, so the diagnosis (if any)
    // can safely abort the machine from here.
    const auto deadlock = checker_->on_wire_delivered();
    if (deadlock) abort(*deadlock);
  }
}

void Machine::on_ctrl(CtrlKind k, std::uint32_t arg, const std::string& why) {
  switch (k) {
    case CtrlKind::kFailed: {
      const int rank = static_cast<int>(arg);
      if (rank >= 0 && rank < size()) (void)mark_failed_local(rank);
      break;
    }
    case CtrlKind::kRevoke:
      (void)revoke_local(arg);
      break;
    case CtrlKind::kAbort:
      (void)abort_local(why.empty() ? std::string{"a peer process aborted"} : why);
      break;
  }
}

Message Machine::take(int self, int source, int tag, std::uint32_t comm,
                      std::uint64_t timeout_ns, const std::vector<int>* group,
                      const std::size_t* exact_bytes) {
  PEACHY_CHECK(self >= 0 && self < size(), "take: bad rank");
  PEACHY_CHECK(is_local(self), "recv: rank " + std::to_string(self) +
                                   " is not hosted by this process");
  // Reject before the checker registers the wait: an out-of-range source
  // is the grading layer's own input, and must become a named error — not
  // a hang (unchecked) or an out-of-bounds wait-for-graph index (checked).
  PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
               "recv: bad source rank");
  // Registered before the mailbox is touched and deregistered only after
  // the mailbox lock is released (declared before the lock → destroyed
  // after it), so ~Machine can wait for every blocked receiver to fully
  // leave the mailbox before tearing it down.
  struct WaiterGuard {
    Machine& m;
    explicit WaiterGuard(Machine& machine) : m{machine} {
      std::lock_guard lock{m.waiters_mu_};
      ++m.active_waiters_;
    }
    ~WaiterGuard() {
      // The broadcast must happen under the lock: the moment the count
      // hits zero ~Machine may destroy this condvar, and its drain-wait
      // cannot re-acquire waiters_mu_ (and thus return) until we release.
      std::lock_guard lock{m.waiters_mu_};
      --m.active_waiters_;
      m.waiters_cv_.notify_all();
    }
  } waiter{*this};
  if (any_failed() && rank_failed(self)) throw faults::RankKilled{self};
  if (injector_) {
    const faults::RecvAction act = injector_->on_recv(self);
    if (act.stall_ns > 0) sleep_ns(act.stall_ns);
    if (act.crash) {
      if (spans_processes()) std::raise(SIGKILL);  // see post_impl
      mark_failed(self);
      throw faults::RankKilled{self};
    }
  }
  obs::SpanScope span{"mpi", "recv"};
  std::uint64_t blocked_ns = 0;
  const bool has_deadline = timeout_ns > 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds{timeout_ns};
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::unique_lock lock{box.mu};
  bool registered = false;
  // Waits that end in an exception must unregister from the wait-for graph
  // (unlike the abort path, the machine keeps running afterwards).
  const auto unregister = [&] {
    if (checker_ && registered) {
      checker_->on_unblock(self);
      registered = false;
    }
  };
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!matches(*it, source, tag, comm)) continue;
      if (exact_bytes != nullptr && it->payload.size() != *exact_bytes) {
        // recv_into size contract: the mismatched message is NOT consumed
        // — it stays queued (and peekable), only the error escapes.
        const std::size_t got = it->payload.size();
        const int msrc = it->source;
        const int mtag = it->tag;
        unregister();
        lock.unlock();
        throw Error{"recv_into: " + std::to_string(got) + "-byte message from rank " +
                    std::to_string(msrc) + " (tag " + std::to_string(mtag) + ") " +
                    (got > *exact_bytes
                         ? std::string{"would be truncated into a "}
                         : std::string{"is shorter than the "}) +
                    std::to_string(*exact_bytes) + "-byte buffer (message left queued)"};
      }
      Message m = std::move(*it);
      box.queue.erase(it);
      unregister();
      obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
      if (blocked_ns != 0) {
        span.arg("blocked_ns", static_cast<std::int64_t>(blocked_ns));
        static obs::Counter& blocked = obs::counter("mpi.recv_blocked_ns");
        blocked.add(static_cast<std::int64_t>(blocked_ns));
      }
      return m;
    }
    if (aborted_.load(std::memory_order_acquire)) {
      std::lock_guard alock{abort_mu_};
      throw Error{"mpi machine aborted while rank " + std::to_string(self) +
                  " was blocked in recv(" + analysis::format_source(source) + ", " +
                  analysis::format_tag(tag) + "): " + abort_reason_};
    }
    // Failure detection (cheap gate: one relaxed-ish load when no rank has
    // failed).  A wait on a specific failed source can never be satisfied.
    // A wildcard wait follows ULFM's pending-failure rule: with no
    // matching message and ANY group member failed, the waiter cannot know
    // the missing message wasn't the dead rank's, so it must be told.
    if (any_failed()) {
      int failed = -1;
      if (source != kAnySource) {
        if (rank_failed(source)) failed = source;
      } else {
        failed = first_failed_in(group);
      }
      if (failed >= 0) {
        unregister();
        lock.unlock();
        throw faults::RankFailedError{
            failed, "rank " + std::to_string(self) + "'s recv(" +
                        analysis::format_source(source) + ", " + analysis::format_tag(tag) +
                        ") cannot complete: rank " + std::to_string(failed) + " failed"};
      }
    }
    if (comm_revoked(comm)) {
      unregister();
      lock.unlock();
      throw faults::CommRevokedError{
          first_failed_in(group),
          "communicator " + std::to_string(comm) + " was revoked while rank " +
              std::to_string(self) + " was in recv(" + analysis::format_source(source) +
              ", " + analysis::format_tag(tag) + ")"};
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      unregister();
      lock.unlock();
      throw faults::TimeoutError{
          "rank " + std::to_string(self) + " timed out after " +
          std::to_string(timeout_ns / 1'000'000) + " ms in recv(" +
          analysis::format_source(source) + ", " + analysis::format_tag(tag) + ")"};
    }
    if (checker_ && !registered) {
      registered = true;
      const auto deadlock = checker_->on_block(self, source, tag, has_deadline);
      if (deadlock) {
        // Wake everyone with the diagnosis; drop the mailbox lock first
        // because abort() touches every mailbox in turn.
        lock.unlock();
        abort(*deadlock);
        throw analysis::CheckFailure{*deadlock};
      }
    }
    // abort(), mark_failed(), and revoke() all take the mailbox lock
    // before notifying, so a plain wait cannot miss those wakeups;
    // spurious wakeups just rescan.
    if (obs::enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      if (has_deadline) {
        box.cv.wait_until(lock, deadline);
      } else {
        box.cv.wait(lock);
      }
      blocked_ns += obs::now_ns() - t0;
    } else if (has_deadline) {
      box.cv.wait_until(lock, deadline);
    } else {
      box.cv.wait(lock);
    }
  }
}

bool Machine::try_peek(int self, int source, int tag, Status& st, std::uint32_t comm) {
  PEACHY_CHECK(self >= 0 && self < size(), "probe: bad rank");
  PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
               "probe: bad source rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard lock{box.mu};
  for (const auto& m : box.queue) {
    if (matches(m, source, tag, comm)) {
      st = Status{m.source, m.tag, m.payload.size()};
      return true;
    }
  }
  return false;
}

bool Machine::mark_failed_local(int rank) {
  PEACHY_CHECK(rank >= 0 && rank < size(), "mark_failed: bad rank");
  bool expected = false;
  if (!failed_[static_cast<std::size_t>(rank)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;
  }
  failed_count_.fetch_add(1, std::memory_order_release);
  if (obs::enabled()) {
    static obs::Counter& failures = obs::counter("faults.rank_failed");
    failures.add(1);
  }
  if (checker_) checker_->on_failed(rank);
  // Lock-then-notify every mailbox (same discipline as abort()): a
  // receiver between "scan found nothing" and "wait" holds its mailbox
  // lock, so none can miss the wakeup that turns its block into
  // RankFailedError.
  for (auto& box : boxes_) {
    { std::lock_guard lock{box->mu}; }
    box->cv.notify_all();
  }
  return true;
}

void Machine::mark_failed(int rank) {
  if (mark_failed_local(rank)) {
    transport_->broadcast_ctrl(CtrlKind::kFailed, static_cast<std::uint32_t>(rank), {});
  }
}

int Machine::first_failed_in(const std::vector<int>* group) const noexcept {
  if (!any_failed()) return -1;
  if (group != nullptr) {
    for (int r : *group) {
      if (r >= 0 && r < size() && rank_failed(r)) return r;
    }
    return -1;
  }
  for (int r = 0; r < size(); ++r) {
    if (rank_failed(r)) return r;
  }
  return -1;
}

std::vector<int> Machine::survivors_of(const std::vector<int>& group) const {
  std::vector<int> out;
  out.reserve(group.size());
  for (int r : group) {
    if (!(r >= 0 && r < size() && rank_failed(r))) out.push_back(r);
  }
  return out;
}

bool Machine::revoke_local(std::uint32_t comm) {
  {
    std::lock_guard lock{revoke_mu_};
    if (std::find(revoked_.begin(), revoked_.end(), comm) != revoked_.end()) return false;
    revoked_.push_back(comm);
  }
  revoked_count_.fetch_add(1, std::memory_order_release);
  if (obs::enabled()) {
    static obs::Counter& revokes = obs::counter("faults.revokes");
    revokes.add(1);
  }
  for (auto& box : boxes_) {
    { std::lock_guard lock{box->mu}; }
    box->cv.notify_all();
  }
  return true;
}

void Machine::revoke(std::uint32_t comm) {
  if (!revoke_local(comm)) return;
  // Failure knowledge travels ahead of the revocation: a peer process
  // that applies the revoke wakes its waiters with CommRevokedError,
  // whose embedded "who failed" answer should already be current — and
  // its shrink() right after must see the same failed set this process
  // saw, or the survivor groups diverge.
  for (int r = 0; r < size(); ++r) {
    if (rank_failed(r)) {
      transport_->broadcast_ctrl(CtrlKind::kFailed, static_cast<std::uint32_t>(r), {});
    }
  }
  transport_->broadcast_ctrl(CtrlKind::kRevoke, comm, {});
}

bool Machine::comm_revoked(std::uint32_t comm) const {
  if (revoked_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard lock{revoke_mu_};
  return std::find(revoked_.begin(), revoked_.end(), comm) != revoked_.end();
}

Machine::Agreement Machine::agree_group(std::uint64_t key, const std::vector<int>& proposal) {
  std::lock_guard lock{agree_mu_};
  auto it = agreements_.find(key);
  if (it == agreements_.end()) {
    it = agreements_
             .emplace(key, Agreement{proposal,
                                     next_comm_id_.fetch_add(1, std::memory_order_relaxed)})
             .first;
  }
  return it->second;
}

void Machine::purge_failed_senders(int self) {
  PEACHY_CHECK(self >= 0 && self < size(), "purge: bad rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard lock{box.mu};
  std::erase_if(box.queue, [&](const Message& m) { return rank_failed(m.source); });
  obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
}

bool Machine::abort_local(const std::string& why) {
  bool first = false;
  {
    std::lock_guard lock{abort_mu_};
    if (!aborted_.load(std::memory_order_acquire)) {
      abort_reason_ = why;
      first = true;
    }
  }
  aborted_.store(true, std::memory_order_release);
  // Acquire each mailbox lock before notifying: a receiver that checked
  // the abort flag and is between "scan found nothing" and "wait" holds
  // the lock, so this synchronizes with every waiter and reliably wakes
  // all of them (the old lock-free notify could race such a receiver into
  // a missed wakeup).
  for (auto& box : boxes_) {
    { std::lock_guard lock{box->mu}; }
    box->cv.notify_all();
  }
  return first;
}

void Machine::abort(const std::string& why) {
  if (abort_local(why)) transport_->broadcast_ctrl(CtrlKind::kAbort, 0, why);
}

void Machine::note_collective(int rank, std::uint64_t index, const analysis::CollectiveDesc& d) {
  if (!checker_) return;
  const auto mismatch = checker_->on_collective(rank, index, d);
  if (mismatch) {
    abort(*mismatch);
    throw analysis::CheckFailure{*mismatch};
  }
}

void Machine::note_exit(int rank) {
  if (!checker_) return;
  const auto deadlock = checker_->on_exit(rank);
  // The exiting rank finished cleanly; the diagnosis is delivered to the
  // still-blocked ranks by aborting the machine.
  if (deadlock) abort(*deadlock);
}

void Machine::scan_leaks() {
  if (!checker_) return;
  for (int dest = 0; dest < size(); ++dest) {
    Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
    std::lock_guard lock{box.mu};
    for (const Message& m : box.queue) {
      checker_->note_leak(m.source, dest, m.tag, m.payload.size());
    }
  }
}

analysis::Report Machine::report() const {
  return checker_ ? checker_->report() : analysis::Report{};
}

TrafficStats Machine::stats() const noexcept {
  return {messages_.load(std::memory_order_relaxed), bytes_.load(std::memory_order_relaxed)};
}

}  // namespace peachy::mpi::detail
