#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "mpi/mpi.hpp"
#include "obs/obs.hpp"

namespace peachy::mpi {

namespace detail {

namespace {

void sleep_ns(std::uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds{static_cast<std::int64_t>(ns)});
}

}  // namespace

Machine::Machine(int nranks, analysis::CheckLevel check, const faults::FaultPlan* plan,
                 std::uint64_t default_timeout_ns, const tune::Tunables* tunables)
    : tunables_{tunables != nullptr ? tunables : &tune::active()},
      default_timeout_ns_{default_timeout_ns} {
  PEACHY_CHECK(nranks >= 1, "machine needs at least one rank");
  boxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    boxes_.back()->trace_name =
        obs::intern_name("mpi.queue[" + std::to_string(i) + "]");
  }
  failed_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    failed_[static_cast<std::size_t>(i)].store(false, std::memory_order_relaxed);
  }
  if (check != analysis::CheckLevel::off) {
    checker_ = std::make_unique<analysis::MpiChecker>(nranks, check);
  }
  if (plan != nullptr) {
    injector_ = std::make_unique<faults::FaultInjector>(*plan, nranks);
  }
}

void Machine::post(int source, int dest, int tag, std::span<const std::byte> payload,
                   std::uint32_t comm) {
  // One memcpy into a pooled slab; the allocation is a freelist pop in
  // steady state.
  PayloadBuffer buf = BufferPool::instance().acquire(payload.size());
  if (!payload.empty()) std::memcpy(buf.mutable_data(), payload.data(), payload.size());
  if (obs::enabled()) {
    static obs::Counter& copied = obs::counter("mpi.bytes_copied");
    copied.add(static_cast<std::int64_t>(payload.size()));
  }
  post_impl(source, dest, tag, std::move(buf), comm);
}

void Machine::post_move(int source, int dest, int tag, PayloadBuffer&& payload,
                        std::uint32_t comm) {
  if (obs::enabled()) {
    static obs::Counter& moved = obs::counter("mpi.bytes_moved");
    moved.add(static_cast<std::int64_t>(payload.size()));
  }
  post_impl(source, dest, tag, std::move(payload), comm);
}

void Machine::post_impl(int source, int dest, int tag, PayloadBuffer&& payload,
                        std::uint32_t comm) {
  PEACHY_CHECK(dest >= 0 && dest < size(), "post: bad destination");
  // Reject the send side symmetrically with take(): an out-of-range
  // source would flow into Message::source and the checker's wait-for
  // graph (on_post indexes by source) exactly like the recv-side bug
  // fixed in PR 1 — make it the same named error instead.
  PEACHY_CHECK(source >= 0 && source < size(), "post: bad source rank");
  // Dead ranks cannot talk: a crashed rank that somehow reaches another
  // send (e.g. user code swallowed the unwinding exception with
  // `catch (...)`) is re-killed on the spot.
  if (any_failed() && rank_failed(source)) throw faults::RankKilled{source};
  bool duplicate = false;
  if (injector_) {
    const faults::SendAction act = injector_->on_send(source, dest, tag);
    if (act.stall_ns > 0) sleep_ns(act.stall_ns);
    if (act.crash) {
      mark_failed(source);
      throw faults::RankKilled{source};
    }
    if (act.delay_ns > 0) sleep_ns(act.delay_ns);
    // A dropped message simply vanishes: never enqueued, never counted,
    // never shown to the checker — exactly what a lossy link looks like.
    if (act.drop) return;
    duplicate = act.duplicate;
  }
  const std::size_t nbytes = payload.size();
  const int copies = duplicate ? 2 : 1;
  const obs::SpanScope span{"mpi", "post", "bytes", static_cast<std::int64_t>(nbytes)};
  Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard lock{box.mu};
    for (int c = 0; c < copies; ++c) {
      Message m;
      m.source = source;
      m.tag = tag;
      m.comm = comm;
      // A duplicated message shares the payload (refcount bump): the
      // receiver sees two full deliveries, the bytes exist once.
      m.payload = c + 1 < copies ? payload.share() : std::move(payload);
      box.queue.push_back(std::move(m));
      // Under the same mailbox lock as the queue push, so the checker's
      // "a satisfying message arrived" flag can never lag a blocked
      // receiver's registration.
      if (checker_) checker_->on_post(source, dest, tag);
    }
    obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
  }
  messages_.fetch_add(static_cast<std::uint64_t>(copies), std::memory_order_relaxed);
  bytes_.fetch_add(static_cast<std::uint64_t>(copies) * nbytes, std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Counter& msgs = obs::counter("mpi.messages");
    static obs::Counter& byts = obs::counter("mpi.bytes");
    msgs.add(copies);
    byts.add(static_cast<std::int64_t>(copies) * static_cast<std::int64_t>(nbytes));
  }
  box.cv.notify_all();
}

Message Machine::take(int self, int source, int tag, std::uint32_t comm,
                      std::uint64_t timeout_ns, const std::vector<int>* group,
                      const std::size_t* exact_bytes) {
  PEACHY_CHECK(self >= 0 && self < size(), "take: bad rank");
  // Reject before the checker registers the wait: an out-of-range source
  // is the grading layer's own input, and must become a named error — not
  // a hang (unchecked) or an out-of-bounds wait-for-graph index (checked).
  PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
               "recv: bad source rank");
  if (any_failed() && rank_failed(self)) throw faults::RankKilled{self};
  if (injector_) {
    const faults::RecvAction act = injector_->on_recv(self);
    if (act.stall_ns > 0) sleep_ns(act.stall_ns);
    if (act.crash) {
      mark_failed(self);
      throw faults::RankKilled{self};
    }
  }
  obs::SpanScope span{"mpi", "recv"};
  std::uint64_t blocked_ns = 0;
  const bool has_deadline = timeout_ns > 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds{timeout_ns};
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::unique_lock lock{box.mu};
  bool registered = false;
  // Waits that end in an exception must unregister from the wait-for graph
  // (unlike the abort path, the machine keeps running afterwards).
  const auto unregister = [&] {
    if (checker_ && registered) {
      checker_->on_unblock(self);
      registered = false;
    }
  };
  for (;;) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (!matches(*it, source, tag, comm)) continue;
      if (exact_bytes != nullptr && it->payload.size() != *exact_bytes) {
        // recv_into size contract: the mismatched message is NOT consumed
        // — it stays queued (and peekable), only the error escapes.
        const std::size_t got = it->payload.size();
        const int msrc = it->source;
        const int mtag = it->tag;
        unregister();
        lock.unlock();
        throw Error{"recv_into: " + std::to_string(got) + "-byte message from rank " +
                    std::to_string(msrc) + " (tag " + std::to_string(mtag) + ") " +
                    (got > *exact_bytes
                         ? std::string{"would be truncated into a "}
                         : std::string{"is shorter than the "}) +
                    std::to_string(*exact_bytes) + "-byte buffer (message left queued)"};
      }
      Message m = std::move(*it);
      box.queue.erase(it);
      unregister();
      obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
      if (blocked_ns != 0) {
        span.arg("blocked_ns", static_cast<std::int64_t>(blocked_ns));
        static obs::Counter& blocked = obs::counter("mpi.recv_blocked_ns");
        blocked.add(static_cast<std::int64_t>(blocked_ns));
      }
      return m;
    }
    if (aborted_.load(std::memory_order_acquire)) {
      std::lock_guard alock{abort_mu_};
      throw Error{"mpi machine aborted while rank " + std::to_string(self) +
                  " was blocked in recv(" + analysis::format_source(source) + ", " +
                  analysis::format_tag(tag) + "): " + abort_reason_};
    }
    // Failure detection (cheap gate: one relaxed-ish load when no rank has
    // failed).  A wait on a specific failed source can never be satisfied.
    // A wildcard wait follows ULFM's pending-failure rule: with no
    // matching message and ANY group member failed, the waiter cannot know
    // the missing message wasn't the dead rank's, so it must be told.
    if (any_failed()) {
      int failed = -1;
      if (source != kAnySource) {
        if (rank_failed(source)) failed = source;
      } else {
        failed = first_failed_in(group);
      }
      if (failed >= 0) {
        unregister();
        lock.unlock();
        throw faults::RankFailedError{
            failed, "rank " + std::to_string(self) + "'s recv(" +
                        analysis::format_source(source) + ", " + analysis::format_tag(tag) +
                        ") cannot complete: rank " + std::to_string(failed) + " failed"};
      }
    }
    if (comm_revoked(comm)) {
      unregister();
      lock.unlock();
      throw faults::CommRevokedError{
          first_failed_in(group),
          "communicator " + std::to_string(comm) + " was revoked while rank " +
              std::to_string(self) + " was in recv(" + analysis::format_source(source) +
              ", " + analysis::format_tag(tag) + ")"};
    }
    if (has_deadline && std::chrono::steady_clock::now() >= deadline) {
      unregister();
      lock.unlock();
      throw faults::TimeoutError{
          "rank " + std::to_string(self) + " timed out after " +
          std::to_string(timeout_ns / 1'000'000) + " ms in recv(" +
          analysis::format_source(source) + ", " + analysis::format_tag(tag) + ")"};
    }
    if (checker_ && !registered) {
      registered = true;
      const auto deadlock = checker_->on_block(self, source, tag, has_deadline);
      if (deadlock) {
        // Wake everyone with the diagnosis; drop the mailbox lock first
        // because abort() touches every mailbox in turn.
        lock.unlock();
        abort(*deadlock);
        throw analysis::CheckFailure{*deadlock};
      }
    }
    // abort(), mark_failed(), and revoke() all take the mailbox lock
    // before notifying, so a plain wait cannot miss those wakeups;
    // spurious wakeups just rescan.
    if (obs::enabled()) {
      const std::uint64_t t0 = obs::now_ns();
      if (has_deadline) {
        box.cv.wait_until(lock, deadline);
      } else {
        box.cv.wait(lock);
      }
      blocked_ns += obs::now_ns() - t0;
    } else if (has_deadline) {
      box.cv.wait_until(lock, deadline);
    } else {
      box.cv.wait(lock);
    }
  }
}

bool Machine::try_peek(int self, int source, int tag, Status& st, std::uint32_t comm) {
  PEACHY_CHECK(self >= 0 && self < size(), "probe: bad rank");
  PEACHY_CHECK(source == kAnySource || (source >= 0 && source < size()),
               "probe: bad source rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard lock{box.mu};
  for (const auto& m : box.queue) {
    if (matches(m, source, tag, comm)) {
      st = Status{m.source, m.tag, m.payload.size()};
      return true;
    }
  }
  return false;
}

void Machine::mark_failed(int rank) {
  PEACHY_CHECK(rank >= 0 && rank < size(), "mark_failed: bad rank");
  bool expected = false;
  if (!failed_[static_cast<std::size_t>(rank)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;
  }
  failed_count_.fetch_add(1, std::memory_order_release);
  if (obs::enabled()) {
    static obs::Counter& failures = obs::counter("faults.rank_failed");
    failures.add(1);
  }
  if (checker_) checker_->on_failed(rank);
  // Lock-then-notify every mailbox (same discipline as abort()): a
  // receiver between "scan found nothing" and "wait" holds its mailbox
  // lock, so none can miss the wakeup that turns its block into
  // RankFailedError.
  for (auto& box : boxes_) {
    { std::lock_guard lock{box->mu}; }
    box->cv.notify_all();
  }
}

int Machine::first_failed_in(const std::vector<int>* group) const noexcept {
  if (!any_failed()) return -1;
  if (group != nullptr) {
    for (int r : *group) {
      if (r >= 0 && r < size() && rank_failed(r)) return r;
    }
    return -1;
  }
  for (int r = 0; r < size(); ++r) {
    if (rank_failed(r)) return r;
  }
  return -1;
}

std::vector<int> Machine::survivors_of(const std::vector<int>& group) const {
  std::vector<int> out;
  out.reserve(group.size());
  for (int r : group) {
    if (!(r >= 0 && r < size() && rank_failed(r))) out.push_back(r);
  }
  return out;
}

void Machine::revoke(std::uint32_t comm) {
  {
    std::lock_guard lock{revoke_mu_};
    if (std::find(revoked_.begin(), revoked_.end(), comm) != revoked_.end()) return;
    revoked_.push_back(comm);
  }
  revoked_count_.fetch_add(1, std::memory_order_release);
  if (obs::enabled()) {
    static obs::Counter& revokes = obs::counter("faults.revokes");
    revokes.add(1);
  }
  for (auto& box : boxes_) {
    { std::lock_guard lock{box->mu}; }
    box->cv.notify_all();
  }
}

bool Machine::comm_revoked(std::uint32_t comm) const {
  if (revoked_count_.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard lock{revoke_mu_};
  return std::find(revoked_.begin(), revoked_.end(), comm) != revoked_.end();
}

Machine::Agreement Machine::agree_group(std::uint64_t key, const std::vector<int>& proposal) {
  std::lock_guard lock{agree_mu_};
  auto it = agreements_.find(key);
  if (it == agreements_.end()) {
    it = agreements_
             .emplace(key, Agreement{proposal,
                                     next_comm_id_.fetch_add(1, std::memory_order_relaxed)})
             .first;
  }
  return it->second;
}

void Machine::purge_failed_senders(int self) {
  PEACHY_CHECK(self >= 0 && self < size(), "purge: bad rank");
  Mailbox& box = *boxes_[static_cast<std::size_t>(self)];
  std::lock_guard lock{box.mu};
  std::erase_if(box.queue, [&](const Message& m) { return rank_failed(m.source); });
  obs::gauge(box.trace_name, static_cast<std::int64_t>(box.queue.size()));
}

void Machine::abort(const std::string& why) {
  {
    std::lock_guard lock{abort_mu_};
    if (!aborted_.load(std::memory_order_acquire)) abort_reason_ = why;
  }
  aborted_.store(true, std::memory_order_release);
  // Acquire each mailbox lock before notifying: a receiver that checked
  // the abort flag and is between "scan found nothing" and "wait" holds
  // the lock, so this synchronizes with every waiter and reliably wakes
  // all of them (the old lock-free notify could race such a receiver into
  // a missed wakeup).
  for (auto& box : boxes_) {
    { std::lock_guard lock{box->mu}; }
    box->cv.notify_all();
  }
}

void Machine::note_collective(int rank, std::uint64_t index, const analysis::CollectiveDesc& d) {
  if (!checker_) return;
  const auto mismatch = checker_->on_collective(rank, index, d);
  if (mismatch) {
    abort(*mismatch);
    throw analysis::CheckFailure{*mismatch};
  }
}

void Machine::note_exit(int rank) {
  if (!checker_) return;
  const auto deadlock = checker_->on_exit(rank);
  // The exiting rank finished cleanly; the diagnosis is delivered to the
  // still-blocked ranks by aborting the machine.
  if (deadlock) abort(*deadlock);
}

void Machine::scan_leaks() {
  if (!checker_) return;
  for (int dest = 0; dest < size(); ++dest) {
    Mailbox& box = *boxes_[static_cast<std::size_t>(dest)];
    std::lock_guard lock{box.mu};
    for (const Message& m : box.queue) {
      checker_->note_leak(m.source, dest, m.tag, m.payload.size());
    }
  }
}

analysis::Report Machine::report() const {
  return checker_ ? checker_->report() : analysis::Report{};
}

TrafficStats Machine::stats() const noexcept {
  return {messages_.load(std::memory_order_relaxed), bytes_.load(std::memory_order_relaxed)};
}

const char* coll_algo_counter_name(tune::CollAlgo algo) noexcept {
  switch (algo) {
    case tune::CollAlgo::kAuto: return "mpi.coll.algo.auto";
    case tune::CollAlgo::kLinear: return "mpi.coll.algo.linear";
    case tune::CollAlgo::kBinomial: return "mpi.coll.algo.binomial";
    case tune::CollAlgo::kRing: return "mpi.coll.algo.ring";
    case tune::CollAlgo::kRecDouble: return "mpi.coll.algo.recdouble";
  }
  return "mpi.coll.algo.auto";
}

const char* coll_span_name(tune::CollOp op, tune::CollAlgo algo) noexcept {
  // obs keeps span-name pointers until export, so every (op, algo) pair
  // maps to a string literal here instead of a formatted string.
  switch (op) {
    case tune::CollOp::kBroadcast:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "broadcast[linear]";
        case tune::CollAlgo::kBinomial: return "broadcast[binomial]";
        case tune::CollAlgo::kRing: return "broadcast[ring]";
        case tune::CollAlgo::kRecDouble: return "broadcast[recdouble]";
        case tune::CollAlgo::kAuto: return "broadcast[auto]";
      }
      return "broadcast[auto]";
    case tune::CollOp::kReduce:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "reduce[linear]";
        case tune::CollAlgo::kBinomial: return "reduce[binomial]";
        case tune::CollAlgo::kRing: return "reduce[ring]";
        case tune::CollAlgo::kRecDouble: return "reduce[recdouble]";
        case tune::CollAlgo::kAuto: return "reduce[auto]";
      }
      return "reduce[auto]";
    case tune::CollOp::kAllreduce:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "allreduce[linear]";
        case tune::CollAlgo::kBinomial: return "allreduce[binomial]";
        case tune::CollAlgo::kRing: return "allreduce[ring]";
        case tune::CollAlgo::kRecDouble: return "allreduce[recdouble]";
        case tune::CollAlgo::kAuto: return "allreduce[auto]";
      }
      return "allreduce[auto]";
    case tune::CollOp::kAllgather:
      switch (algo) {
        case tune::CollAlgo::kLinear: return "allgather[linear]";
        case tune::CollAlgo::kBinomial: return "allgather[binomial]";
        case tune::CollAlgo::kRing: return "allgather[ring]";
        case tune::CollAlgo::kRecDouble: return "allgather[recdouble]";
        case tune::CollAlgo::kAuto: return "allgather[auto]";
      }
      return "allgather[auto]";
  }
  return "coll[auto]";
}

}  // namespace detail

void Comm::barrier() {
  const int tag = begin_collective({"barrier", -1, 1, -1});
  const int p = size();
  const std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int dest = (rank_ + dist) % p;
    const int src = (rank_ - dist + p) % p;
    // Round-distinct sub-tag: token from round k must not satisfy round k+1.
    machine_->post(world_rank(), to_world(dest), tag, std::span<const std::byte>{&token, 1},
                   comm_id_);
    (void)recv_bytes(src, tag);
    // NOTE: dissemination rounds reuse the same tag but distinct (src,dist)
    // pairs, and recv matches on source, so rounds cannot cross-match
    // unless p is a power of two *and* two rounds share a source — which
    // cannot happen since distances are distinct powers of two < p.
  }
}

void Comm::broadcast_bytes(std::vector<std::byte>& data, int root) {
  PEACHY_CHECK(root >= 0 && root < size(), "broadcast: bad root");
  const int tag = begin_collective(
      {"broadcast", root, 1,
       rank_ == root ? static_cast<std::int64_t>(data.size()) : std::int64_t{-1}});
  // Non-roots don't know the payload size in advance, so only
  // byte-unconstrained rules can select an algorithm here.
  const tune::CollAlgo algo = pick_algo_(tune::CollOp::kBroadcast, tune::kBytesUnknown);
  const obs::SpanScope span{"mpi", detail::coll_span_name(tune::CollOp::kBroadcast, algo),
                            "algo", static_cast<std::int64_t>(algo)};
  PayloadBuffer buf;
  if (rank_ == root) {
    buf = BufferPool::instance().acquire(data.size());
    if (!data.empty()) std::memcpy(buf.mutable_data(), data.data(), data.size());
  }
  bcast_payload_algo(buf, root, tag, algo);
  if (rank_ != root) data = buf.release_bytes();
}

void Comm::bcast_payload(PayloadBuffer& buf, int root, int tag) {
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  // Receive phase: find the lowest set bit position where we get our copy.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int vsrc = vrank - mask;
      const int src = (vsrc + root) % p;
      buf = recv_buffer(src, tag);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to the subtree below us.  Forwarding is a
  // refcount bump on the pooled payload — each edge is counted as a full
  // message, but its bytes are never copied again.
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & mask) == 0 && vrank + mask < p) {
      const int dest = (vrank + mask + root) % p;
      machine_->post_move(world_rank(), to_world(dest), tag, buf.share(), comm_id_);
    }
    mask >>= 1;
  }
}

void Comm::bcast_payload_algo(PayloadBuffer& buf, int root, int tag, tune::CollAlgo algo) {
  switch (algo) {
    case tune::CollAlgo::kLinear:
      bcast_payload_linear(buf, root, tag);
      return;
    case tune::CollAlgo::kRing:
      bcast_payload_chain(buf, root, tag);
      return;
    default:
      // kAuto, kBinomial — and kRecDouble, which has no broadcast form —
      // all take the historical binomial tree.
      bcast_payload(buf, root, tag);
      return;
  }
}

void Comm::bcast_payload_linear(PayloadBuffer& buf, int root, int tag) {
  const int p = size();
  if (p == 1) return;
  if (rank_ == root) {
    // One round: p−1 refcount bumps of the same pooled payload.  On the
    // in-process transport there is no serialization to overlap, so the
    // tree's extra hops buy nothing — this is the latency-optimal shape
    // the tuner usually picks at small p.
    for (int k = 1; k < p; ++k) {
      const int dest = (root + k) % p;
      machine_->post_move(world_rank(), to_world(dest), tag, buf.share(), comm_id_);
    }
    return;
  }
  buf = recv_buffer(root, tag);
}

void Comm::bcast_payload_chain(PayloadBuffer& buf, int root, int tag) {
  const int p = size();
  if (p == 1) return;
  const int vrank = (rank_ - root + p) % p;
  if (vrank != 0) buf = recv_buffer((rank_ - 1 + p) % p, tag);
  if (vrank + 1 < p) {
    machine_->post_move(world_rank(), to_world((rank_ + 1) % p), tag, buf.share(), comm_id_);
  }
}

void Comm::allgather_blocks_ring(std::vector<PayloadBuffer>& blocks, int tag) {
  const int p = size();
  const int right = (rank_ + 1) % p;
  const int left = (rank_ - 1 + p) % p;
  for (int step = 0; step < p - 1; ++step) {
    const int send_block = (rank_ - step + p) % p;
    const int recv_block = (rank_ - step - 1 + p) % p;
    machine_->post_move(world_rank(), to_world(right), tag,
                        blocks[static_cast<std::size_t>(send_block)].share(), comm_id_);
    blocks[static_cast<std::size_t>(recv_block)] = recv_buffer(left, tag);
  }
}

void Comm::allgather_blocks_linear(std::vector<PayloadBuffer>& blocks, int tag) {
  // Direct exchange: everyone posts its own block to everyone (buffered
  // sends never block), then drains p−1 receives.  Same total message
  // count as the ring, one round of latency instead of p−1.
  const int p = size();
  for (int k = 1; k < p; ++k) {
    const int dest = (rank_ + k) % p;
    machine_->post_move(world_rank(), to_world(dest), tag,
                        blocks[static_cast<std::size_t>(rank_)].share(), comm_id_);
  }
  for (int k = 1; k < p; ++k) {
    const int src = (rank_ - k + p) % p;
    blocks[static_cast<std::size_t>(src)] = recv_buffer(src, tag);
  }
}

void Comm::allgather_blocks_recdouble(std::vector<PayloadBuffer>& blocks, int tag) {
  // Recursive doubling (power-of-two p, enforced at selection): at round
  // k this rank holds the 2^k blocks of its mask-aligned group and
  // trades them all with its partner in the paired group.  Blocks travel
  // in ascending index order both ways, and FIFO matching per
  // (source, tag) keeps them in order — same total message count as the
  // ring, log2(p) rounds of latency.
  const int p = size();
  for (int mask = 1; mask < p; mask <<= 1) {
    const int partner = rank_ ^ mask;
    const int my_base = rank_ & ~(mask - 1);
    const int partner_base = partner & ~(mask - 1);
    for (int b = my_base; b < my_base + mask; ++b) {
      machine_->post_move(world_rank(), to_world(partner), tag,
                          blocks[static_cast<std::size_t>(b)].share(), comm_id_);
    }
    for (int b = partner_base; b < partner_base + mask; ++b) {
      blocks[static_cast<std::size_t>(b)] = recv_buffer(partner, tag);
    }
  }
}

void Comm::revoke() { machine_->revoke(comm_id_); }

Comm Comm::shrink() {
  const obs::SpanScope span{"faults", "shrink"};
  const std::uint64_t t0 = obs::now_ns();
  const std::vector<int> members = group();
  // ULFM's iterate-until-stable discipline, with the machine's shared
  // agreement table standing in for a cross-process agreement protocol:
  // propose the survivors we observe; the first proposal stored under the
  // key wins and every survivor adopts it.  If an adopted group member
  // fails before everyone adopted, all survivors iterate to the next key
  // (deterministic: same keys, same table, same winner on every rank).
  detail::Machine::Agreement agreed;
  for (;;) {
    const std::vector<int> survivors = machine_->survivors_of(members);
    PEACHY_CHECK(!survivors.empty(), "shrink: no surviving ranks");
    const std::uint64_t key = (static_cast<std::uint64_t>(comm_id_) << 32) | shrink_seq_;
    ++shrink_seq_;
    agreed = machine_->agree_group(key, survivors);
    if (machine_->first_failed_in(&agreed.group) < 0) break;
  }
  // Stale traffic from the dead rank(s) must not satisfy post-recovery
  // receives on the old communicator; each survivor scrubs its own box.
  machine_->purge_failed_senders(world_rank());
  const int my_world = world_rank();
  int new_rank = -1;
  for (std::size_t i = 0; i < agreed.group.size(); ++i) {
    if (agreed.group[i] == my_world) new_rank = static_cast<int>(i);
  }
  PEACHY_CHECK(new_rank >= 0, "shrink: calling rank is not a survivor");
  if (obs::enabled()) {
    static obs::Histogram& recovery = obs::histogram("faults.recovery_ns");
    recovery.note(obs::now_ns() - t0);
  }
  return Comm{*machine_, new_rank, agreed.group, agreed.comm_id, timeout_ns_};
}

namespace {

/// Process-wide default op deadline from `PEACHY_MPI_TIMEOUT_MS` (0 = none).
std::uint64_t env_timeout_ns() {
  static const std::uint64_t v = [] {
    const char* e = std::getenv("PEACHY_MPI_TIMEOUT_MS");
    if (e == nullptr || *e == '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(std::strtoull(e, nullptr, 10) * 1'000'000ULL);
  }();
  return v;
}

TrafficStats run_impl(int nranks, const RunOptions& opts,
                      const std::function<void(Comm&)>& fn, analysis::Report* out) {
  PEACHY_CHECK(nranks >= 1, "run: need at least one rank");
  PEACHY_CHECK(fn != nullptr, "run: null rank function");
  const faults::FaultPlan* plan =
      opts.plan != nullptr ? opts.plan : faults::FaultPlan::from_env();
  const std::uint64_t timeout_ns =
      opts.op_timeout_ns > 0 ? opts.op_timeout_ns : env_timeout_ns();
  detail::Machine machine{nranks, opts.check, plan, timeout_ns, opts.tunables};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&machine, &fn, &err_mu, &first_error, r] {
      Comm comm{machine, r};
      try {
        fn(comm);
        machine.note_exit(r);
      } catch (const faults::RankKilled&) {
        // Injected crash: the rank is already marked failed, its peers see
        // RankFailedError, and the machine keeps running — the survivors'
        // recovery (or failure to recover) is the run's outcome.
      } catch (const std::exception& e) {
        {
          std::lock_guard lock{err_mu};
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort("rank " + std::to_string(r) + " threw: " + e.what());
      } catch (...) {
        {
          std::lock_guard lock{err_mu};
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort("rank " + std::to_string(r) + " threw");
      }
    });
  }
  for (auto& t : threads) t.join();

  if (opts.fault_log != nullptr) {
    *opts.fault_log =
        machine.injector() != nullptr ? machine.injector()->log_string() : std::string{};
  }

  // With a failed rank, undelivered messages to/from it are the expected
  // debris of the crash, not program bugs — skip the leak scan (the
  // rank-failure warning finding already records what happened).  Same
  // for an active fault plan: injected dups create messages the program
  // never asked for, and drops/delays/stalls shift arrivals past
  // drain-by-probe loops, so leftovers indict the injection, not the
  // program.
  const bool injecting = plan != nullptr && !plan->empty();
  if (!machine.aborted() && !machine.any_failed() && !injecting) machine.scan_leaks();
  const analysis::Report report = machine.report();
  if (out != nullptr) *out = report;

  if (first_error) {
    // In checked mode a non-clean report *is* the outcome; secondary
    // "machine aborted" errors from the other ranks are just echoes.
    const bool captured = out != nullptr && !report.clean();
    if (!captured) std::rethrow_exception(first_error);
  } else if (out == nullptr && !report.clean()) {
    // Unchecked surface: exit-time findings (leaks) become hard failures.
    throw analysis::CheckFailure{report.to_string()};
  }
  return machine.stats();
}

}  // namespace

TrafficStats run(int nranks, const std::function<void(Comm&)>& fn, analysis::CheckLevel level) {
  RunOptions opts;
  opts.check = level;
  return run_impl(nranks, opts, fn, nullptr);
}

TrafficStats run(int nranks, const std::function<void(Comm&)>& fn, const RunOptions& opts) {
  return run_impl(nranks, opts, fn, nullptr);
}

CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn,
                       analysis::CheckLevel level) {
  CheckedRun result;
  RunOptions opts;
  opts.check = level;
  result.stats = run_impl(nranks, opts, fn, &result.report);
  return result;
}

CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn, RunOptions opts) {
  CheckedRun result;
  if (opts.check == analysis::CheckLevel::off) opts.check = analysis::CheckLevel::full;
  result.stats = run_impl(nranks, opts, fn, &result.report);
  return result;
}

}  // namespace peachy::mpi
