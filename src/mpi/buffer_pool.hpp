#pragma once
/// \file buffer_pool.hpp
/// \brief Pooled, refcounted payload buffers for the mini-MPI transport.
///
/// Every message the mini-MPI moves needs backing storage that outlives
/// the sender's stack frame.  The original transport heap-allocated a
/// fresh `std::vector<std::byte>` per `post` — an allocation *and* a copy
/// on the hottest path in the system.  This module replaces that with two
/// zero-allocation-in-steady-state mechanisms:
///
///   * **Pooled slabs.**  `BufferPool::acquire(n)` hands out a
///     `PayloadBuffer` backed by a size-classed slab (power-of-two
///     classes, per-class freelists).  When the last reference drops, the
///     slab returns to its freelist, so after warm-up `post` performs one
///     memcpy and zero allocations.  The refcount lives in a header
///     *inside* the slab allocation, so a message costs no side
///     allocations either.
///
///   * **Adopted containers.**  `BufferPool::adopt(vector&&)` wraps a
///     caller-owned vector without copying its bytes — the zero-copy
///     `post_move` path for large sends (collective internals, typed
///     sends of owned vectors).  A byte-vector adopted uniquely can be
///     stolen back out on the receive side (`release_bytes`), making a
///     moved send end-to-end copy-free.
///
/// `PayloadBuffer` is a move-only handle; `share()` bumps the refcount so
/// collectives can forward one payload to several destinations (binomial
/// broadcast, ring allgather) without re-serializing.  Payload storage is
/// aligned to `alignof(std::max_align_t)`, so receivers may read it
/// through a `const T*` for any trivially copyable `T` (the in-place
/// reduction path does exactly that).
///
/// The pool is a process-lifetime singleton (like the obs registries):
/// buffers survive across `Machine` lifetimes, which is what makes
/// repeated short runs — the shape of every experiment harness —
/// allocation-free after the first.  `PEACHY_MPI_POOL=0` (or
/// `set_pooling(false)`) disables reuse for debugging / ASan precision:
/// every acquire allocates and every release frees, with identical
/// semantics.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace peachy::mpi {

class BufferPool;

namespace pool_detail {

/// Header embedded at the front of every pooled slab allocation.  The
/// payload starts `kHeaderSize` bytes in, keeping max_align_t alignment.
struct SlabHeader {
  std::atomic<std::uint32_t> refs{1};
  std::uint32_t size_class = 0;       ///< freelist index, or kUnpooledClass
  std::size_t capacity = 0;           ///< payload capacity in bytes
  SlabHeader* next = nullptr;         ///< freelist link (valid only when parked)
};

inline constexpr std::size_t kHeaderSize =
    (sizeof(SlabHeader) + alignof(std::max_align_t) - 1) /
    alignof(std::max_align_t) * alignof(std::max_align_t);

[[nodiscard]] inline std::byte* slab_payload(SlabHeader* h) noexcept {
  return reinterpret_cast<std::byte*>(h) + kHeaderSize;
}

/// Refcounted wrapper around an adopted (moved-in) container.  Type-erased
/// so typed vectors can ride the zero-copy path; `as_bytes` is non-null
/// only for `std::vector<std::byte>`, enabling the receive-side steal.
struct OwnerNode {
  std::atomic<std::uint32_t> refs{1};
  void* obj = nullptr;
  void (*destroy)(void*) = nullptr;
  std::vector<std::byte>* as_bytes = nullptr;
};

}  // namespace pool_detail

/// Aggregate pool counters (monotonic except `live` / `free_bytes`).
struct PoolStats {
  std::uint64_t acquires = 0;    ///< total acquire() calls
  std::uint64_t hits = 0;        ///< served from a freelist
  std::uint64_t misses = 0;      ///< new slab allocated
  std::uint64_t adopted = 0;     ///< total adopt() calls (moved payloads)
  std::uint64_t live = 0;        ///< pooled slabs currently checked out
  std::uint64_t free_bytes = 0;  ///< payload bytes parked on freelists
};

/// Move-only refcounted handle to message payload storage (pooled slab or
/// adopted container).  Never throws; an empty handle has size() == 0.
class PayloadBuffer {
 public:
  PayloadBuffer() noexcept = default;
  ~PayloadBuffer() { reset(); }

  PayloadBuffer(PayloadBuffer&& o) noexcept
      : slab_{o.slab_}, owner_{o.owner_}, data_{o.data_}, size_{o.size_} {
    o.slab_ = nullptr;
    o.owner_ = nullptr;
    o.data_ = nullptr;
    o.size_ = 0;
  }
  PayloadBuffer& operator=(PayloadBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      slab_ = o.slab_;
      owner_ = o.owner_;
      data_ = o.data_;
      size_ = o.size_;
      o.slab_ = nullptr;
      o.owner_ = nullptr;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  PayloadBuffer(const PayloadBuffer&) = delete;
  PayloadBuffer& operator=(const PayloadBuffer&) = delete;

  /// Another handle to the same bytes (refcount bump, no copy).  The
  /// payload must be treated as immutable once shared.
  [[nodiscard]] PayloadBuffer share() const noexcept;

  /// Drop this handle's reference; on the last drop the slab returns to
  /// its freelist (or the adopted container is destroyed).
  void reset() noexcept;

  [[nodiscard]] const std::byte* data() const noexcept { return data_; }
  /// Writable view — only valid before the buffer is posted/shared.
  [[nodiscard]] std::byte* mutable_data() noexcept { return const_cast<std::byte*>(data_); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const std::byte> span() const noexcept { return {data_, size_}; }

  /// The payload as a byte vector.  Zero-copy when this is the only
  /// reference to a byte-vector adopted via `adopt`; otherwise one copy.
  [[nodiscard]] std::vector<std::byte> release_bytes() noexcept;

 private:
  friend class BufferPool;
  pool_detail::SlabHeader* slab_ = nullptr;   ///< pooled storage, or
  pool_detail::OwnerNode* owner_ = nullptr;   ///< adopted storage
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// The process-wide size-classed slab pool.
class BufferPool {
 public:
  /// Singleton accessor (leaked; never destroyed, so rank threads may
  /// release buffers at any point of process teardown).
  [[nodiscard]] static BufferPool& instance();

  /// A writable buffer of exactly `bytes` payload bytes (uninitialized).
  [[nodiscard]] PayloadBuffer acquire(std::size_t bytes);

  /// Wrap a byte vector without copying (the post_move fast path).
  [[nodiscard]] PayloadBuffer adopt(std::vector<std::byte>&& v);

  /// Wrap a typed vector without copying; `T` must be trivially copyable.
  template <typename T>
  [[nodiscard]] PayloadBuffer adopt_typed(std::vector<T>&& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto* heap = new std::vector<T>(std::move(v));
    return adopt_erased(
        heap, [](void* p) { delete static_cast<std::vector<T>*>(p); },
        reinterpret_cast<const std::byte*>(heap->data()), heap->size() * sizeof(T), nullptr);
  }

  [[nodiscard]] PoolStats stats() const noexcept;

  /// Enable/disable slab reuse (PEACHY_MPI_POOL=0 sets this at startup).
  /// Call only while no pooled buffers are in flight.
  void set_pooling(bool enabled) noexcept;
  [[nodiscard]] bool pooling() const noexcept;

  /// Free every parked slab (test isolation / memory pressure).
  void trim() noexcept;

 private:
  BufferPool();
  friend class PayloadBuffer;

  PayloadBuffer adopt_erased(void* obj, void (*destroy)(void*), const std::byte* data,
                             std::size_t size, std::vector<std::byte>* as_bytes);
  void release_slab(pool_detail::SlabHeader* h) noexcept;
  static void release_owner(pool_detail::OwnerNode* n) noexcept;

  struct Impl;
  Impl* impl_;  // leaked with the singleton
};

}  // namespace peachy::mpi
