#include <cstdlib>
#include <thread>

#include "faults/plan.hpp"
#include "mpi/launch.hpp"
#include "mpi/mpi.hpp"

namespace peachy::mpi {

namespace {

/// Process-wide default op deadline from `PEACHY_MPI_TIMEOUT_MS` (0 = none).
std::uint64_t env_timeout_ns() {
  static const std::uint64_t v = [] {
    const char* e = std::getenv("PEACHY_MPI_TIMEOUT_MS");
    if (e == nullptr || *e == '\0') return std::uint64_t{0};
    return static_cast<std::uint64_t>(std::strtoull(e, nullptr, 10) * 1'000'000ULL);
  }();
  return v;
}

/// Which backend this run actually uses.  Inside a launched world the
/// launcher's wire is law — every process must speak the same transport,
/// so a conflicting explicit request is a named error, not a preference
/// fight.  Outside, RunOptions wins over PEACHY_TRANSPORT.
TransportKind resolve_transport(const RunOptions& opts) {
  const LaunchInfo& li = launch_info();
  if (li.launched) {
    PEACHY_CHECK(opts.transport == TransportKind::kDefault || opts.transport == li.kind,
                 "run: this process was launched over the '" +
                     std::string{transport_name(li.kind)} +
                     "' transport and cannot switch to '" +
                     std::string{transport_name(opts.transport)} + "'");
    return li.kind;
  }
  if (opts.transport != TransportKind::kDefault) return opts.transport;
  return transport_from_env();
}

TrafficStats run_impl(int nranks, const RunOptions& opts,
                      const std::function<void(Comm&)>& fn, analysis::Report* out) {
  PEACHY_CHECK(nranks >= 1, "run: need at least one rank");
  PEACHY_CHECK(fn != nullptr, "run: null rank function");
  const TransportKind kind = resolve_transport(opts);
  const LaunchInfo& li = launch_info();
  const bool spans = li.launched && li.nranks > 1;
  // The checker observes every rank's events through shared memory; a
  // multi-process world feeds it only this process's slice, so every
  // diagnosis would be a guess.  Launched runs must check in a separate
  // single-process execution (same seed, same answer — that equivalence
  // is what the cross-backend conformance suite pins down).
  PEACHY_CHECK(!spans || opts.check == analysis::CheckLevel::off,
               "run: the correctness checker requires all ranks in one process; "
               "rerun unlaunched (or with check=off) instead");
  const faults::FaultPlan* plan =
      opts.plan != nullptr ? opts.plan : faults::FaultPlan::from_env();
  // Wire-scoped events live at the transport send boundary, below the
  // Machine — arm (or disarm) the process-global injector for this run.
  faults::wire::configure(plan);
  const std::uint64_t timeout_ns =
      opts.op_timeout_ns > 0 ? opts.op_timeout_ns : env_timeout_ns();
  detail::Machine machine{nranks, opts.check, plan, timeout_ns, opts.tunables, kind};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    // In a launched world each process hosts exactly its own rank; the
    // other ranks' threads run in their own processes.
    if (!machine.is_local(r)) continue;
    threads.emplace_back([&machine, &fn, &err_mu, &first_error, r] {
      Comm comm{machine, r};
      try {
        fn(comm);
        machine.note_exit(r);
      } catch (const faults::RankKilled&) {
        // Injected crash: the rank is already marked failed, its peers see
        // RankFailedError, and the machine keeps running — the survivors'
        // recovery (or failure to recover) is the run's outcome.
      } catch (const std::exception& e) {
        {
          std::lock_guard lock{err_mu};
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort("rank " + std::to_string(r) + " threw: " + e.what());
      } catch (...) {
        {
          std::lock_guard lock{err_mu};
          if (!first_error) first_error = std::current_exception();
        }
        machine.abort("rank " + std::to_string(r) + " threw");
      }
    });
  }
  for (auto& t : threads) t.join();

  if (opts.fault_log != nullptr) {
    *opts.fault_log =
        machine.injector() != nullptr ? machine.injector()->log_string() : std::string{};
    if (const faults::WireInjector* wi = faults::wire::injector(); wi != nullptr) {
      *opts.fault_log += wi->log_string();
    }
  }

  // With a failed rank, undelivered messages to/from it are the expected
  // debris of the crash, not program bugs — skip the leak scan (the
  // rank-failure warning finding already records what happened).  Same
  // for an active fault plan: injected dups create messages the program
  // never asked for, and drops/delays/stalls shift arrivals past
  // drain-by-probe loops, so leftovers indict the injection, not the
  // program.
  const bool injecting = plan != nullptr && !plan->empty();
  if (!machine.aborted() && !machine.any_failed() && !injecting) machine.scan_leaks();
  const analysis::Report report = machine.report();
  if (out != nullptr) *out = report;

  if (first_error) {
    // In checked mode a non-clean report *is* the outcome; secondary
    // "machine aborted" errors from the other ranks are just echoes.
    const bool captured = out != nullptr && !report.clean();
    if (!captured) std::rethrow_exception(first_error);
  } else if (out == nullptr && !report.clean()) {
    // Unchecked surface: exit-time findings (leaks) become hard failures.
    throw analysis::CheckFailure{report.to_string()};
  }
  return machine.stats();
}

}  // namespace

TrafficStats run(int nranks, const std::function<void(Comm&)>& fn, analysis::CheckLevel level) {
  RunOptions opts;
  opts.check = level;
  return run_impl(nranks, opts, fn, nullptr);
}

TrafficStats run(int nranks, const std::function<void(Comm&)>& fn, const RunOptions& opts) {
  return run_impl(nranks, opts, fn, nullptr);
}

CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn,
                       analysis::CheckLevel level) {
  CheckedRun result;
  RunOptions opts;
  opts.check = level;
  result.stats = run_impl(nranks, opts, fn, &result.report);
  return result;
}

CheckedRun run_checked(int nranks, const std::function<void(Comm&)>& fn, RunOptions opts) {
  CheckedRun result;
  if (opts.check == analysis::CheckLevel::off) opts.check = analysis::CheckLevel::full;
  result.stats = run_impl(nranks, opts, fn, &result.report);
  return result;
}

}  // namespace peachy::mpi
