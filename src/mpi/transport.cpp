#include "mpi/transport.hpp"

#include <cstdlib>

#include "support/check.hpp"

namespace peachy::mpi {

namespace detail {
// Defined in transport_inproc.cpp / transport_shm.cpp / transport_socket.cpp.
std::unique_ptr<Transport> make_inproc_transport(const TransportConfig& cfg);
std::unique_ptr<Transport> make_shm_transport(const TransportConfig& cfg);
std::unique_ptr<Transport> make_socket_transport(const TransportConfig& cfg);
}  // namespace detail

const char* transport_name(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::kDefault: return "default";
    case TransportKind::kInproc: return "inproc";
    case TransportKind::kShm: return "shm";
    case TransportKind::kSocket: return "socket";
  }
  return "?";
}

TransportKind parse_transport(const std::string& name) {
  if (name == "inproc") return TransportKind::kInproc;
  if (name == "shm") return TransportKind::kShm;
  if (name == "socket") return TransportKind::kSocket;
  PEACHY_CHECK(false, "unknown transport '" + name + "' (expected inproc, shm, or socket)");
}

TransportKind transport_from_env() {
  const char* v = std::getenv("PEACHY_TRANSPORT");
  if (v == nullptr || *v == '\0') return TransportKind::kInproc;
  return parse_transport(v);
}

namespace detail {

std::unique_ptr<Transport> make_transport(const TransportConfig& cfg) {
  PEACHY_CHECK(cfg.nranks > 0, "make_transport: nranks must be positive");
  PEACHY_CHECK(cfg.sink != nullptr, "make_transport: null sink");
  switch (cfg.kind) {
    case TransportKind::kShm: return make_shm_transport(cfg);
    case TransportKind::kSocket: return make_socket_transport(cfg);
    case TransportKind::kDefault:
    case TransportKind::kInproc: break;
  }
  return make_inproc_transport(cfg);
}

}  // namespace detail
}  // namespace peachy::mpi
