#pragma once
/// \file wire.hpp
/// \brief Frame format shared by the wire transports (shm ring, socket).
///
/// One fixed-size little-endian header followed by `bytes` of payload.
/// Both wire backends speak exactly this framing — the shm ring stores
/// frames in slots/spillover, the socket backend writes them onto an
/// ordered stream — so the failure-mapping and sequencing logic lives
/// in one place (DESIGN.md §15).
///
/// The `seq` field scopes a frame to one Machine generation.  SPMD
/// processes create their machines in lockstep (same program, same
/// order), so the n-th machine of every process shares sequence number
/// n; a frame that arrives before the local machine of its generation
/// exists is buffered by the endpoint, and a frame for an already-
/// destroyed generation (a message leaked by the program) is dropped —
/// stale traffic can never satisfy a later run's receive.

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "mpi/transport.hpp"

namespace peachy::mpi::detail {

inline constexpr std::uint32_t kWireMagic = 0x50434859;  // "PCHY"

/// Frame discriminator.  kData carries a Message; the rest are control
/// frames (hello/bye are endpoint-level, failed/revoke/abort map onto
/// CtrlKind for the sink).
enum class WireKind : std::uint8_t {
  kData = 0,
  kHello = 1,   ///< first frame on a socket connection; source = proc id
  kBye = 2,     ///< clean process departure; EOF after this is not a death
  kFailed = 3,  ///< source = world rank that died
  kRevoke = 4,  ///< comm = revoked communicator id
  kAbort = 5,   ///< payload = abort reason string
};

struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint8_t kind = 0;
  std::uint8_t pad[3] = {0, 0, 0};
  std::uint32_t seq = 0;     ///< machine generation (kData/kRevoke/kAbort)
  std::int32_t source = 0;   ///< sender world rank (kData) / proc or rank id (ctrl)
  std::int32_t dest = 0;     ///< destination world rank (kData)
  std::int32_t tag = 0;
  std::uint32_t comm = 0;
  std::uint64_t bytes = 0;   ///< payload length following this header
};
static_assert(sizeof(FrameHeader) == 40, "wire framing is layout-sensitive");

[[nodiscard]] inline FrameHeader make_data_header(std::uint32_t seq, const Message& m,
                                                  int dest) noexcept {
  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(WireKind::kData);
  h.seq = seq;
  h.source = m.source;
  h.dest = dest;
  h.tag = m.tag;
  h.comm = m.comm;
  h.bytes = m.payload.size();
  return h;
}

[[nodiscard]] inline FrameHeader make_ctrl_header(WireKind kind, std::uint32_t seq,
                                                  std::int32_t source, std::uint32_t comm,
                                                  std::uint64_t bytes = 0) noexcept {
  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(kind);
  h.seq = seq;
  h.source = source;
  h.comm = comm;
  h.bytes = bytes;
  return h;
}

/// Reconstruct a Message from a received frame (payload copied into a
/// pooled buffer — the wire is where zero-copy forwarding ends).
[[nodiscard]] inline Message frame_to_message(const FrameHeader& h, const std::byte* payload) {
  Message m;
  m.source = h.source;
  m.tag = h.tag;
  m.comm = h.comm;
  m.payload = BufferPool::instance().acquire(static_cast<std::size_t>(h.bytes));
  if (h.bytes != 0) std::memcpy(m.payload.mutable_data(), payload, h.bytes);
  return m;
}

}  // namespace peachy::mpi::detail
