#pragma once
/// \file wire.hpp
/// \brief Frame format shared by the wire transports (shm ring, socket).
///
/// One fixed-size little-endian header followed by `bytes` of payload.
/// Both wire backends speak exactly this framing — the shm ring stores
/// frames in slots/spillover, the socket backend writes them onto an
/// ordered stream — so the failure-mapping and sequencing logic lives
/// in one place (DESIGN.md §15).
///
/// The `seq` field scopes a frame to one Machine generation.  SPMD
/// processes create their machines in lockstep (same program, same
/// order), so the n-th machine of every process shares sequence number
/// n; a frame that arrives before the local machine of its generation
/// exists is buffered by the endpoint, and a frame for an already-
/// destroyed generation (a message leaked by the program) is dropped —
/// stale traffic can never satisfy a later run's receive.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "faults/plan.hpp"
#include "kernels/crc32c.hpp"
#include "mpi/transport.hpp"

namespace peachy::mpi::detail {

/// "PCH2": bumped from "PCHY" when the CRC field landed — a mixed-version
/// world fails loudly at the magic check instead of misparsing frames.
inline constexpr std::uint32_t kWireMagic = 0x50434832;

/// Frame discriminator.  kData carries a Message; the rest are control
/// frames (hello/bye are endpoint-level, failed/revoke/abort map onto
/// CtrlKind for the sink).
enum class WireKind : std::uint8_t {
  kData = 0,
  kHello = 1,   ///< first frame on a socket connection; source = proc id
  kBye = 2,     ///< clean process departure; EOF after this is not a death
  kFailed = 3,  ///< source = world rank that died
  kRevoke = 4,  ///< comm = revoked communicator id
  kAbort = 5,   ///< payload = abort reason string
  kPing = 6,    ///< heartbeat; endpoint-level, never routed to a machine
};

// The faults layer scopes wire events by frame kind without being able to
// include this header (mpi depends on faults, not vice versa); it mirrors
// these values as plain ints.  Keep the two sides pinned together.
static_assert(faults::kWireFrameData == static_cast<int>(WireKind::kData) &&
                  faults::kWireFrameHello == static_cast<int>(WireKind::kHello) &&
                  faults::kWireFrameBye == static_cast<int>(WireKind::kBye) &&
                  faults::kWireFrameFailed == static_cast<int>(WireKind::kFailed) &&
                  faults::kWireFrameRevoke == static_cast<int>(WireKind::kRevoke) &&
                  faults::kWireFrameAbort == static_cast<int>(WireKind::kAbort) &&
                  faults::kWireFramePing == static_cast<int>(WireKind::kPing),
              "faults::kWireFrame* must mirror WireKind numerically");

/// FrameHeader.flags bit: the CRC also covers the payload bytes, not just
/// the header.  The flag travels with the frame, so the receiver verifies
/// exactly what the sender sealed even when the two processes disagree
/// about the environment.
inline constexpr std::uint8_t kFrameFlagCrcPayload = 1;

struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;    ///< kFrameFlag* bits; covered by the CRC
  std::uint8_t pad[2] = {0, 0};
  std::uint32_t seq = 0;     ///< machine generation (kData/kRevoke/kAbort)
  std::int32_t source = 0;   ///< sender world rank (kData) / proc or rank id (ctrl)
  std::int32_t dest = 0;     ///< destination world rank (kData)
  std::int32_t tag = 0;
  std::uint32_t comm = 0;
  std::uint64_t bytes = 0;   ///< payload length following this header
  std::uint32_t crc = 0;     ///< CRC32C over header (crc zeroed) [+ payload]
  std::uint32_t pad2 = 0;
};
static_assert(sizeof(FrameHeader) == 48, "wire framing is layout-sensitive");

/// Should outbound frames seal the CRC over the payload too?
///
/// The header CRC is always on: 44 bytes through the hardware CRC32C
/// costs ~10ns a frame and catches desync, header corruption, and a torn
/// length field — the failures that wedge a stream.  Payload coverage
/// costs two extra passes over every byte (seal + verify, ~8 GB/s each
/// against a wire that moves ~5 GB/s), so it switches on only when it can
/// catch something: a wire fault plan is armed (chaos runs *flip payload
/// bytes* and the receiver must catch every one), or the deployment asks
/// for it with PEACHY_WIRE_CRC=full.  This is the "<2% when idle"
/// contract of EXPERIMENTS.md T-FLT-2 — full coverage is measured there
/// at up to 2.1x on 64 KiB shm transfers.
[[nodiscard]] inline bool wire_crc_covers_payload() noexcept {
  static const bool forced = [] {
    const char* env = std::getenv("PEACHY_WIRE_CRC");
    return env != nullptr && std::strcmp(env, "full") == 0;
  }();
  return forced || faults::wire::injector() != nullptr;
}

/// CRC32C of a frame: the header with its crc field zeroed, chained with
/// the payload when the header's flag says it was sealed that way.
[[nodiscard]] inline std::uint32_t frame_crc(const FrameHeader& h,
                                             const std::byte* payload) noexcept {
  FrameHeader c = h;
  c.crc = 0;
  std::uint32_t x = kernels::crc32c(0, &c, sizeof c);
  if ((h.flags & kFrameFlagCrcPayload) != 0 && h.bytes != 0 && payload != nullptr) {
    x = kernels::crc32c(x, payload, static_cast<std::size_t>(h.bytes));
  }
  return x;
}

/// Stamp the CRC before the frame goes onto the wire (every send path).
/// Resolves the payload-coverage policy and records it in the header.
inline void seal_frame(FrameHeader& h, const std::byte* payload) noexcept {
  if (wire_crc_covers_payload()) h.flags |= kFrameFlagCrcPayload;
  h.crc = frame_crc(h, payload);
}

/// Receive-side integrity check; verifies what the sender sealed.
[[nodiscard]] inline bool frame_crc_ok(const FrameHeader& h,
                                       const std::byte* payload) noexcept {
  return h.crc == frame_crc(h, payload);
}

[[nodiscard]] inline FrameHeader make_data_header(std::uint32_t seq, const Message& m,
                                                  int dest) noexcept {
  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(WireKind::kData);
  h.seq = seq;
  h.source = m.source;
  h.dest = dest;
  h.tag = m.tag;
  h.comm = m.comm;
  h.bytes = m.payload.size();
  return h;
}

[[nodiscard]] inline FrameHeader make_ctrl_header(WireKind kind, std::uint32_t seq,
                                                  std::int32_t source, std::uint32_t comm,
                                                  std::uint64_t bytes = 0) noexcept {
  FrameHeader h;
  h.kind = static_cast<std::uint8_t>(kind);
  h.seq = seq;
  h.source = source;
  h.comm = comm;
  h.bytes = bytes;
  return h;
}

/// Reconstruct a Message from a received frame (payload copied into a
/// pooled buffer — the wire is where zero-copy forwarding ends).
[[nodiscard]] inline Message frame_to_message(const FrameHeader& h, const std::byte* payload) {
  Message m;
  m.source = h.source;
  m.tag = h.tag;
  m.comm = h.comm;
  m.payload = BufferPool::instance().acquire(static_cast<std::size_t>(h.bytes));
  if (h.bytes != 0) std::memcpy(m.payload.mutable_data(), payload, h.bytes);
  return m;
}

}  // namespace peachy::mpi::detail
