#include "mpi/buffer_pool.hpp"

#include <array>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "tune/tune.hpp"

namespace peachy::mpi {

namespace {

using pool_detail::kHeaderSize;
using pool_detail::OwnerNode;
using pool_detail::SlabHeader;
using pool_detail::slab_payload;

// Power-of-two size classes 2^8 .. 2^22 (256 B .. 4 MiB); larger requests
// bypass the freelists (class kUnpooledClass) — they are rare enough that
// the allocator is fine, and parking multi-MB slabs would pin memory.
constexpr std::size_t kMinClassLog2 = 8;
constexpr std::size_t kMaxClassLog2 = 22;
constexpr std::size_t kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;
constexpr std::uint32_t kUnpooledClass = 0xffffffffu;
// Bound on parked slabs per class: enough that every rank of the widest
// machine the tests run (p=16) can have a send and a receive in flight
// without a miss, small enough that the pool's resident set stays modest.
// This is the compiled-in default of tune::Tunables::pool_max_parked; a
// loaded profile can trade resident bytes against hit rate.  Read per
// release (one relaxed snapshot load) so a profile installed before a
// run takes effect without rebuilding the pool.
std::size_t max_parked_per_class() noexcept { return tune::active().pool_max_parked; }

std::uint32_t class_for(std::size_t bytes) noexcept {
  std::size_t cap = std::size_t{1} << kMinClassLog2;
  std::uint32_t cls = 0;
  while (cap < bytes) {
    cap <<= 1;
    ++cls;
  }
  return cls < kNumClasses ? cls : kUnpooledClass;
}

std::size_t class_capacity(std::uint32_t cls) noexcept {
  return std::size_t{1} << (kMinClassLog2 + cls);
}

SlabHeader* new_slab(std::uint32_t cls, std::size_t capacity) {
  void* mem = ::operator new(kHeaderSize + capacity);
  auto* h = new (mem) SlabHeader{};
  h->size_class = cls;
  h->capacity = capacity;
  return h;
}

void delete_slab(SlabHeader* h) noexcept {
  h->~SlabHeader();
  ::operator delete(static_cast<void*>(h));
}

}  // namespace

struct BufferPool::Impl {
  struct FreeList {
    std::mutex mu;
    SlabHeader* head = nullptr;
    std::size_t count = 0;
  };
  std::array<FreeList, kNumClasses> classes;
  std::atomic<bool> pooling{true};
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> adopted{0};
  std::atomic<std::uint64_t> live{0};
  std::atomic<std::uint64_t> free_bytes{0};
};

BufferPool::BufferPool() : impl_{new Impl} {
  if (const char* env = std::getenv("PEACHY_MPI_POOL")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
      impl_->pooling.store(false, std::memory_order_relaxed);
    }
  }
}

BufferPool& BufferPool::instance() {
  static BufferPool* pool = new BufferPool;  // leaked: outlives every rank thread
  return *pool;
}

PayloadBuffer BufferPool::acquire(std::size_t bytes) {
  impl_->acquires.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t cls = class_for(bytes);
  SlabHeader* h = nullptr;
  if (cls != kUnpooledClass && impl_->pooling.load(std::memory_order_relaxed)) {
    Impl::FreeList& fl = impl_->classes[cls];
    std::lock_guard lock{fl.mu};
    if (fl.head != nullptr) {
      h = fl.head;
      fl.head = h->next;
      --fl.count;
      impl_->free_bytes.fetch_sub(h->capacity, std::memory_order_relaxed);
    }
  }
  const bool hit = h != nullptr;
  if (hit) {
    impl_->hits.fetch_add(1, std::memory_order_relaxed);
    h->refs.store(1, std::memory_order_relaxed);
    h->next = nullptr;
  } else {
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    h = new_slab(cls, cls == kUnpooledClass ? bytes : class_capacity(cls));
  }
  const auto live = impl_->live.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::enabled()) {
    static obs::Counter& hits = obs::counter("mpi.pool.hits");
    static obs::Counter& misses = obs::counter("mpi.pool.misses");
    (hit ? hits : misses).add(1);
    obs::gauge("mpi.pool.live", static_cast<std::int64_t>(live));
  }
  PayloadBuffer b;
  b.slab_ = h;
  b.data_ = slab_payload(h);
  b.size_ = bytes;
  return b;
}

PayloadBuffer BufferPool::adopt(std::vector<std::byte>&& v) {
  auto* heap = new std::vector<std::byte>(std::move(v));
  return adopt_erased(
      heap, [](void* p) { delete static_cast<std::vector<std::byte>*>(p); },
      heap->data(), heap->size(), heap);
}

PayloadBuffer BufferPool::adopt_erased(void* obj, void (*destroy)(void*),
                                       const std::byte* data, std::size_t size,
                                       std::vector<std::byte>* as_bytes) {
  impl_->adopted.fetch_add(1, std::memory_order_relaxed);
  auto* n = new OwnerNode{};
  n->obj = obj;
  n->destroy = destroy;
  n->as_bytes = as_bytes;
  PayloadBuffer b;
  b.owner_ = n;
  b.data_ = data;
  b.size_ = size;
  return b;
}

void BufferPool::release_slab(SlabHeader* h) noexcept {
  impl_->live.fetch_sub(1, std::memory_order_relaxed);
  const std::uint32_t cls = h->size_class;
  if (cls != kUnpooledClass && impl_->pooling.load(std::memory_order_relaxed)) {
    Impl::FreeList& fl = impl_->classes[cls];
    std::lock_guard lock{fl.mu};
    if (fl.count < max_parked_per_class()) {
      h->next = fl.head;
      fl.head = h;
      ++fl.count;
      impl_->free_bytes.fetch_add(h->capacity, std::memory_order_relaxed);
      return;
    }
  }
  delete_slab(h);
}

void BufferPool::release_owner(OwnerNode* n) noexcept {
  n->destroy(n->obj);
  delete n;
}

PoolStats BufferPool::stats() const noexcept {
  PoolStats s;
  s.acquires = impl_->acquires.load(std::memory_order_relaxed);
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.adopted = impl_->adopted.load(std::memory_order_relaxed);
  s.live = impl_->live.load(std::memory_order_relaxed);
  s.free_bytes = impl_->free_bytes.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::set_pooling(bool enabled) noexcept {
  impl_->pooling.store(enabled, std::memory_order_relaxed);
  if (!enabled) trim();
}

bool BufferPool::pooling() const noexcept {
  return impl_->pooling.load(std::memory_order_relaxed);
}

void BufferPool::trim() noexcept {
  for (auto& fl : impl_->classes) {
    std::lock_guard lock{fl.mu};
    while (fl.head != nullptr) {
      SlabHeader* h = fl.head;
      fl.head = h->next;
      --fl.count;
      impl_->free_bytes.fetch_sub(h->capacity, std::memory_order_relaxed);
      delete_slab(h);
    }
  }
}

PayloadBuffer PayloadBuffer::share() const noexcept {
  PayloadBuffer b;
  if (slab_ != nullptr) {
    slab_->refs.fetch_add(1, std::memory_order_relaxed);
  } else if (owner_ != nullptr) {
    owner_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  b.slab_ = slab_;
  b.owner_ = owner_;
  b.data_ = data_;
  b.size_ = size_;
  return b;
}

void PayloadBuffer::reset() noexcept {
  if (slab_ != nullptr) {
    // Release ordering so the last dropper sees every write the other
    // holders made before their drop (acq_rel on the decrement).
    if (slab_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      BufferPool::instance().release_slab(slab_);
    }
  } else if (owner_ != nullptr) {
    if (owner_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      BufferPool::release_owner(owner_);
    }
  }
  slab_ = nullptr;
  owner_ = nullptr;
  data_ = nullptr;
  size_ = 0;
}

std::vector<std::byte> PayloadBuffer::release_bytes() noexcept {
  std::vector<std::byte> out;
  if (owner_ != nullptr && owner_->as_bytes != nullptr &&
      owner_->refs.load(std::memory_order_acquire) == 1) {
    out = std::move(*owner_->as_bytes);
  } else {
    out.assign(data_, data_ + size_);
  }
  reset();
  return out;
}

}  // namespace peachy::mpi
