#pragma once
/// \file frame_router.hpp
/// \brief Generation-scoped frame routing shared by the wire endpoints.
///
/// A process holds ONE endpoint per wire backend (socket mesh / shm
/// segment) but may create many Machines over its lifetime — fault_demo
/// alone runs four back-to-back worlds.  The router is the piece that
/// reconciles the two lifetimes: each Machine attaches as a sink and is
/// handed a generation number (`seq`), every wire frame carries the
/// sender's generation, and incoming frames are
///
///   * delivered, when they name the currently-attached generation,
///   * buffered, when they are from a peer that has already moved on to
///     a later generation (SPMD processes create machines in the same
///     order, so generation n means "the n-th mpi::run of the program"
///     in every process — the frame's machine just doesn't exist *here*
///     yet), and
///   * dropped, when their generation has been retired — stale traffic
///     must never satisfy a later run's receive.
///
/// Process deaths are generation-independent and sticky: a peer that
/// died stays dead for every future machine, so deaths are replayed to
/// each newly-attached sink before any buffered frames.
///
/// Locking: route/attach/detach serialize on one mutex, and delivery
/// happens under it.  That makes detach a synchronization point — after
/// detach returns, the retired sink will never be called again — which
/// is exactly the `Transport::shutdown` contract ~Machine relies on.
/// Sink calls only ever take mailbox/checker locks, never transport
/// locks, so holding the router mutex across them cannot deadlock.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mpi/transport.hpp"

namespace peachy::mpi::detail {

class FrameRouter {
 public:
  /// Attach `sink` as the next generation; returns its seq.  Replays
  /// known peer deaths, then any frames buffered for this generation,
  /// in arrival order.
  std::uint32_t attach(TransportSink* sink) {
    std::lock_guard lock{mu_};
    const std::uint32_t seq = next_seq_++;
    sink_ = sink;
    active_seq_ = seq;
    for (const auto& [rank, why] : dead_) sink_->on_ctrl(CtrlKind::kFailed, rank, why);
    if (const auto it = pending_.find(seq); it != pending_.end()) {
      for (Pending& p : it->second) dispatch_locked(std::move(p));
      pending_.erase(it);
    }
    // Generations below the new floor can never attach; drop their frames.
    pending_.erase(pending_.begin(), pending_.lower_bound(seq));
    return seq;
  }

  /// Retire `seq`.  Blocks until any in-progress route call finishes;
  /// after return the sink is never called again.
  void detach(std::uint32_t seq) {
    std::lock_guard lock{mu_};
    if (active_seq_ == seq && sink_ != nullptr) sink_ = nullptr;
  }

  /// Pump-side: a data frame arrived for generation `seq`.
  void route_data(std::uint32_t seq, int dest, Message&& m) {
    std::lock_guard lock{mu_};
    if (sink_ != nullptr && seq == active_seq_) {
      sink_->deliver(dest, std::move(m), 1);
      return;
    }
    if (seq < next_seq_) return;  // retired (or detached current) generation
    pending_[seq].push_back(Pending{false, dest, std::move(m), CtrlKind::kFailed, 0, {}});
  }

  /// Pump-side: a generation-scoped control frame (revoke/abort)
  /// arrived.  Process deaths go through peer_failed instead.
  void route_ctrl(std::uint32_t seq, CtrlKind k, std::uint32_t arg, std::string why) {
    std::lock_guard lock{mu_};
    if (sink_ != nullptr && seq == active_seq_) {
      sink_->on_ctrl(k, arg, why);
      return;
    }
    if (seq < next_seq_) return;
    pending_[seq].push_back(Pending{true, 0, Message{}, k, arg, std::move(why)});
  }

  /// A peer process died (EOF without goodbye, or the launcher reaped a
  /// signal death).  Applies to the attached sink now and is replayed
  /// to every future sink.  Idempotent per rank.
  void peer_failed(std::uint32_t rank, const std::string& why) {
    std::lock_guard lock{mu_};
    for (const auto& [r, w] : dead_) {
      if (r == rank) return;
    }
    dead_.emplace_back(rank, why);
    if (sink_ != nullptr) sink_->on_ctrl(CtrlKind::kFailed, rank, why);
  }

 private:
  struct Pending {
    bool is_ctrl;
    int dest;
    Message m;
    CtrlKind k;
    std::uint32_t arg;
    std::string why;
  };

  void dispatch_locked(Pending&& p) {
    if (p.is_ctrl) {
      sink_->on_ctrl(p.k, p.arg, p.why);
    } else {
      sink_->deliver(p.dest, std::move(p.m), 1);
    }
  }

  std::mutex mu_;
  TransportSink* sink_ = nullptr;
  std::uint32_t active_seq_ = 0;
  std::uint32_t next_seq_ = 0;  ///< next generation to hand out; all below are retired
  std::map<std::uint32_t, std::vector<Pending>> pending_;
  std::vector<std::pair<std::uint32_t, std::string>> dead_;
};

}  // namespace peachy::mpi::detail
