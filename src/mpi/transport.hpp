#pragma once
/// \file transport.hpp
/// \brief The mini-MPI transport seam: one message-movement interface,
/// three backends (in-process, shared-memory, TCP socket).
///
/// DESIGN.md §15.  `detail::Machine` owns matching, blocking, failure
/// detection, checking, and fault injection; a `Transport` owns nothing
/// but *message movement*: `send()` routes a fully-formed `Message` to
/// the destination rank's mailbox, delivering through the machine's
/// `TransportSink::deliver` — on the calling thread for the in-process
/// backend, on a pump thread for the wire backends.  Everything above
/// the seam (checker, injector, obs hooks, tuned collectives, the
/// recv-side matching loop) is backend-agnostic by construction, which
/// is the point of the refactor.
///
/// Backends:
///
///   kInproc — the historical pooled path: `send` pushes straight into
///             the destination mailbox under its lock (one refcount
///             move, zero copies).  Bit-identical to the pre-seam code.
///   kShm    — a POSIX shared-memory segment holding one slot-ring per
///             process (fixed-size slots + a spillover region for large
///             frames), with process-shared robust mutexes and condvars
///             for cross-process wakeup.  Co-located processes only.
///   kSocket — length-prefixed frames over loopback TCP, one ordered
///             connection per process pair.  True multi-process runs;
///             peer death surfaces as EOF/ECONNRESET and is mapped to
///             the poisoned-mailbox failure path (CtrlKind::kFailed).
///
/// Selection: `RunOptions::transport`, else the `PEACHY_TRANSPORT`
/// environment variable (`inproc` | `shm` | `socket`; unset means
/// inproc), resolved by `transport_from_env()`.  Inside a world spawned
/// by peachy-launch / `mpi::launch()`, the launcher's choice (from the
/// rendezvous environment) always wins — every process of one world
/// must speak the same wire.
///
/// Single-process semantics are identical across all three backends:
/// the wire backends route every message — including rank-to-same-
/// process rank — through full serialization, so the conformance suite
/// exercises the real frame path without needing multiple processes.
/// The only intentional behavioral difference is asynchrony: a wire
/// `send` returns after handing the frame to the transport, and the
/// message becomes visible to `probe`/`recv` when the pump delivers it.

#include <cstdint>
#include <memory>
#include <string>

#include "mpi/buffer_pool.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>

namespace peachy::mpi {

/// Which message-movement backend a run uses.  kDefault defers to the
/// PEACHY_TRANSPORT environment variable (unset → kInproc).
enum class TransportKind : std::uint8_t { kDefault, kInproc, kShm, kSocket };

/// "inproc" / "shm" / "socket" (string literals; kDefault → "default").
[[nodiscard]] const char* transport_name(TransportKind k) noexcept;

/// Resolve PEACHY_TRANSPORT: unset or empty → kInproc; "inproc" | "shm"
/// | "socket" → that backend; anything else is a named peachy::Error
/// (a typo must not silently fall back to a different transport).
[[nodiscard]] TransportKind transport_from_env();

/// Parse one transport name ("inproc" | "shm" | "socket"); named error
/// otherwise.  CLI surface for examples/tools (--transport=...).
[[nodiscard]] TransportKind parse_transport(const std::string& name);

namespace detail {

struct Message {
  int source;
  int tag;
  /// Communicator the message belongs to (0 = the world communicator).
  /// Matching requires equality, so a shrunken communicator's collectives
  /// can never consume stale traffic addressed to the communicator it
  /// replaced — without carving up the tag space.
  std::uint32_t comm = 0;
  PayloadBuffer payload;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
  /// This mailbox's queue-depth gauge name ("mpi.queue[r]"), interned
  /// via obs::intern_name so the pointer outlives the Machine — trace
  /// export happens after short-lived Machines are destroyed.
  const char* trace_name = "mpi.queue[?]";
};

/// Control events a transport can surface to its machine.  These carry
/// the cross-process halves of protocols the machine already implements
/// locally (mark_failed / revoke / abort); the transport never interprets
/// them beyond routing.
enum class CtrlKind : std::uint8_t {
  kFailed,  ///< arg = world rank that died (process exit without goodbye)
  kRevoke,  ///< arg = communicator id revoked by a peer process
  kAbort,   ///< why = the aborting peer's reason; arg unused
};

/// The machine half of the seam: where delivered messages and control
/// events land.  Implemented by detail::Machine.  `deliver` may be
/// called from the sending rank's thread (inproc) or a transport pump
/// thread (shm/socket); it must be safe against concurrent receivers.
class TransportSink {
 public:
  virtual ~TransportSink() = default;

  /// Enqueue `m` into dest's mailbox and wake its waiters.  `copies > 1`
  /// is the fault injector's duplicate-delivery: every copy shares the
  /// payload bytes (refcount bump), the receiver sees `copies` full
  /// deliveries.
  virtual void deliver(int dest, Message&& m, int copies) = 0;

  /// A control event arrived from a peer process (or from the transport
  /// itself, e.g. EOF-detected peer death).
  virtual void on_ctrl(CtrlKind k, std::uint32_t arg, const std::string& why) = 0;
};

/// The transport half of the seam: message movement only.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual TransportKind kind() const noexcept = 0;

  /// True when the world's ranks live in more than one OS process (a
  /// launched run).  Gates the behaviors that only make sense across
  /// processes: injected crashes become real SIGKILLs, failure/revoke
  /// events are broadcast, and every rank checkpoints (the in-memory
  /// store is per-process).
  [[nodiscard]] virtual bool spans_processes() const noexcept = 0;

  /// True when `rank` executes in this process (always true for inproc
  /// and for un-launched shm/socket runs).
  [[nodiscard]] virtual bool is_local(int rank) const noexcept = 0;

  /// Route one message to `dest`'s mailbox.  Local destinations reach
  /// the sink on this thread (inproc) or via the frame path (wire
  /// backends — serialization is exercised even locally); remote
  /// destinations are framed and shipped.  Sends to a rank whose
  /// process already died are dropped silently — dead ranks cannot
  /// hear, and the sender learns of the death through the failure path.
  virtual void send(int dest, Message&& m, int copies) = 0;

  /// Fan a control event out to every *other* process of the world (the
  /// caller has already applied it locally).  No-op when the world is a
  /// single process.
  virtual void broadcast_ctrl(CtrlKind k, std::uint32_t arg, const std::string& why) = 0;

  /// Detach from the sink: after shutdown returns, no further deliver /
  /// on_ctrl calls will be made.  Idempotent; called by ~Machine.
  virtual void shutdown() = 0;
};

/// Everything a backend needs to wire itself to one machine.
struct TransportConfig {
  int nranks = 0;
  TransportKind kind = TransportKind::kInproc;
  TransportSink* sink = nullptr;
};

/// Backend factory.  kDefault/kInproc → in-process; kShm / kSocket
/// attach to the process-wide endpoint for that backend (created on
/// first use; rendezvous with peer processes happens there when the
/// run was spawned by mpi::launch()).
[[nodiscard]] std::unique_ptr<Transport> make_transport(const TransportConfig& cfg);

}  // namespace detail
}  // namespace peachy::mpi
