#pragma once
/// \file shm_ring.hpp
/// \brief The shared-memory segment layout and ring operations behind
/// the shm transport (DESIGN.md §15, fast-path protocol §16).
///
/// One POSIX shm segment per world.  Layout:
///
///   [ShmSegHeader][ShmRing #0][spill #0][ShmRing #1][spill #1]...
///
/// Each *process* owns one inbound ring; any process may push into any
/// ring (multi-producer), only the owner's pump pops (single-consumer).
/// A frame whose payload fits `kShmInlineBytes` travels inline in its
/// slot; larger payloads are carved from the ring's spillover arena by
/// a first-fit, offset-sorted, coalescing free list (all free-list
/// state lives in the segment, protected by the ring mutex).
///
/// Two slot protocols share this layout, chosen by the segment creator
/// (PEACHY_SHM_RING=fast|locked, recorded in ShmSegHeader so every
/// attacher agrees):
///
/// **fast** (default): a lock-free bounded MPMC-claim / single-consumer
/// slot protocol.  Every slot carries a free-running sequence number
/// `seq` (initially its index): a producer CAS-claims position `pos` on
/// the atomic `head`, writes the slot, and *publishes* it with a
/// release store of `seq = pos + 1`; the consumer accepts a slot only
/// when an acquire load observes `seq == pos + 1`, and recycles it with
/// `seq = pos + kShmRingSlots` after consuming.  Waiting is adaptive
/// spin-then-futex with parked-flag handshakes, so steady-state traffic
/// does zero wake syscalls and zero lock operations on the small-message
/// path; only spill (> 1 KiB) allocation still takes the robust mutex.
/// Crash robustness keeps the launcher-as-failure-detector model: each
/// producer stores its claimed position into a per-process *claim
/// register* before the CAS, so when a producer dies between claim and
/// publish the consumer — once the launcher sets the victim's bit in
/// `dead_mask` — can prove the unpublished hole belongs to a dead
/// process (its register names the position and no live register does)
/// and recycle the slot.  See DESIGN.md §16 for the full ordering
/// argument.
///
/// **locked** (fallback; also auto-selected when nprocs exceeds the
/// claim-register width): the original PROCESS_SHARED ROBUST mutex +
/// condvar protocol.  A slot is fully written before `head` is bumped
/// under the lock; a producer death hands the next locker EOWNERDEAD,
/// pthread_mutex_consistent() restores the lock, and the uncommitted
/// slot is never observed.  Condvar waits use a ~100ms timedwait as a
/// safety poll so a wakeup lost to a peer death never strands a waiter
/// (the fast path's futex waits keep the same 100ms backstop).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <pthread.h>

#include "mpi/wire.hpp"

namespace peachy::mpi::detail {

// "PSM3": bumped from "PSM2" when the heartbeat alive words (and the
// CRC-bearing 48-byte FrameHeader inside every slot) changed the layout.
inline constexpr std::uint32_t kShmMagic = 0x50534D33;
inline constexpr std::size_t kShmInlineBytes = 1024;    ///< inline payload capacity per slot
inline constexpr std::size_t kShmRingSlots = 64;
inline constexpr std::size_t kShmSpillBytes = std::size_t{16} << 20;  ///< spill arena per ring
inline constexpr std::uint64_t kShmSpillNull = ~std::uint64_t{0};

/// Widest world the fast protocol's claim registers / dead_mask cover.
/// Larger worlds fall back to the locked protocol automatically.
inline constexpr int kShmMaxFastProcs = 64;
/// Claim-register index used by the launcher (not one of the ranks).
inline constexpr int kShmLauncherProc = kShmMaxFastProcs;
inline constexpr std::uint64_t kShmClaimNone = ~std::uint64_t{0};

enum class ShmRingMode : std::uint32_t { kFast = 0, kLocked = 1 };

static_assert(std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "shm fast path requires address-free lock-free atomics");

struct ShmSlot {
  std::atomic<std::uint64_t> seq;  ///< fast mode: publication sequence (see header comment)
  FrameHeader hdr;
  std::uint64_t spill_off = kShmSpillNull;  ///< offset into the ring's spill arena, or null
  std::uint64_t spill_cap = 0;              ///< allocated spill block size (>= hdr.bytes)
  std::byte inline_bytes[kShmInlineBytes];
};

struct ShmRing {
  pthread_mutex_t mu;        ///< PROCESS_SHARED | ROBUST (locked mode + spill free list)
  pthread_cond_t not_empty;  ///< PROCESS_SHARED, CLOCK_MONOTONIC (locked mode only)
  pthread_cond_t not_full;
  /// Next slot index to write / read (free-running).  Fast mode claims
  /// `head` by CAS and owns `tail` from the single consumer; locked mode
  /// reads and writes both with relaxed ops under `mu`.
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint64_t> tail;
  std::uint64_t free_head = 0;  ///< offset of first free spill block (offset-sorted list)
  /// Fast mode: per-process claim registers.  claim[p] == pos exactly
  /// while process p is between claiming slot `pos` and publishing it —
  /// the evidence the consumer needs to skip a dead producer's hole.
  std::atomic<std::uint64_t> claim[kShmMaxFastProcs + 1];
  /// Fast mode parking state: nonzero while the consumer / >= 1 producer
  /// is (about to be) in futex_wait, so the other side pays a wake
  /// syscall only when someone is actually parked.
  alignas(64) std::atomic<std::uint32_t> consumer_parked;
  std::atomic<std::uint32_t> futex_empty;  ///< wake generation, consumer waits here
  alignas(64) std::atomic<std::uint32_t> producers_parked;
  std::atomic<std::uint32_t> futex_full;  ///< wake generation, producers wait here
  ShmSlot slots[kShmRingSlots];
};

struct ShmSegHeader {
  std::uint32_t magic = 0;
  std::uint32_t nprocs = 0;
  std::uint64_t spill_bytes = 0;  ///< spill arena size per ring
  ShmRingMode mode = ShmRingMode::kFast;
  std::uint32_t pad_ = 0;
  /// Fast mode: bit p set once the launcher knows process p is dead
  /// (set *before* it posts the kFailed frames, so a consumer stuck on
  /// p's unpublished slot can always make progress).
  std::atomic<std::uint64_t> dead_mask;
  /// Heartbeat last-alive words: each process's beat thread stores its
  /// CLOCK_MONOTONIC timestamp (ns) into alive_ns[proc] and scans its
  /// peers' words — the shm equivalent of the socket backend's kPing
  /// frames (DESIGN.md §17).  Zero means "never beat" (process not up
  /// yet, or heartbeat disabled), which monitors skip — no false death
  /// from a slow-starting peer.  The segment is page-zeroed at creation,
  /// so no init is needed.
  std::atomic<std::uint64_t> alive_ns[kShmMaxFastProcs];
};

/// A mapped segment (creator or attacher side).
struct ShmView {
  void* base = nullptr;
  std::size_t bytes = 0;

  [[nodiscard]] ShmSegHeader* header() const noexcept {
    return static_cast<ShmSegHeader*>(base);
  }
  [[nodiscard]] ShmRing* ring(int proc) const noexcept;
  [[nodiscard]] std::byte* spill(int proc) const noexcept;
  [[nodiscard]] explicit operator bool() const noexcept { return base != nullptr; }
};

[[nodiscard]] std::size_t shm_segment_bytes(int nprocs, std::size_t spill_bytes);

/// Create + map a fresh segment (`O_CREAT|O_EXCL`; a stale same-name
/// segment from a crashed earlier run is unlinked and creation retried
/// once).  Initializes every ring's slot sequences, mutex/condvars, and
/// free list.  The ring protocol is chosen here — PEACHY_SHM_RING=locked
/// forces the fallback, worlds wider than kShmMaxFastProcs get it
/// automatically, and any value other than fast|locked is a named
/// error — and recorded in the header for every attacher.
[[nodiscard]] ShmView shm_create(const std::string& name, int nprocs, std::size_t spill_bytes);

/// Map an existing segment by name; validates the magic.
[[nodiscard]] ShmView shm_attach(const std::string& name);

void shm_detach(ShmView& view) noexcept;

/// Record process `proc` as dead (launcher side).  Publishes the
/// dead_mask bit and wakes every ring's consumer so one stuck on the
/// victim's unpublished slot re-evaluates immediately instead of on the
/// next 100ms poll.
void shm_mark_dead(const ShmView& view, int proc) noexcept;

/// Push one frame into `proc`'s ring as process `me` (ranks pass their
/// own proc index, the launcher passes kShmLauncherProc).  Only the
/// fast protocol uses `me` (claim-register index, bounded by
/// kShmLauncherProc); the locked fallback ignores it, so wide worlds'
/// ranks past the register width push normally.  Blocks while
/// the ring is full or the spill arena can't fit the payload; bails out
/// and returns false if `give_up` becomes true while waiting (used to
/// stop filling the ring of a process known to be dead).  A payload
/// larger than the whole spill arena is a named error.
bool ring_push(const ShmView& view, int proc, int me, const FrameHeader& h,
               const std::byte* payload, const std::atomic<bool>* give_up = nullptr);

/// Pop one frame from `proc`'s ring, handing `consume` the header and a
/// pointer to the payload *while it still lives in the segment* (inline
/// slot or spill block) — the single-copy receive path: the callback
/// copies straight from shared memory into its destination, no
/// intermediate vector.  The slot/spill storage is released only after
/// `consume` returns; the callback must not push into this same ring.
/// Blocks until a frame arrives; returns false once `stop` is true and
/// the ring is empty.  `waited`, when non-null, is set to whether the
/// consumer had to park/poll before this frame arrived (the pump's
/// batch-size signal).
bool ring_consume(const ShmView& view, int proc, const std::atomic<bool>& stop,
                  const std::function<void(const FrameHeader&, const std::byte*)>& consume,
                  bool* waited = nullptr);

/// Vector-copy convenience wrapper over ring_consume (unit tests; the
/// transport pump uses ring_consume directly).
bool ring_pop(const ShmView& view, int proc, FrameHeader& h, std::vector<std::byte>& payload,
              const std::atomic<bool>& stop);

namespace test_hooks {
/// When true, ring_push raises SIGKILL after claiming a slot and before
/// publishing it (fast mode only) — the crashed-peer-mid-slot-write
/// scenario the stress suite drives from a forked child.
extern std::atomic<bool> g_die_between_claim_and_publish;
}  // namespace test_hooks

}  // namespace peachy::mpi::detail
