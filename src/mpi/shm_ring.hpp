#pragma once
/// \file shm_ring.hpp
/// \brief The shared-memory segment layout and ring operations behind
/// the shm transport (DESIGN.md §15).
///
/// One POSIX shm segment per world.  Layout:
///
///   [ShmSegHeader][ShmRing #0][spill #0][ShmRing #1][spill #1]...
///
/// Each *process* owns one inbound ring; any process may push into any
/// ring (multi-producer), only the owner's pump pops (single-consumer).
/// A frame whose payload fits `kShmInlineBytes` travels inline in its
/// slot; larger payloads are carved from the ring's spillover arena by
/// a first-fit, offset-sorted, coalescing free list (all free-list
/// state lives in the segment, protected by the ring mutex).
///
/// Synchronization is a process-shared ROBUST mutex plus two
/// process-shared condvars per ring.  Crash consistency leans on one
/// rule: a slot is fully written — header, spill copy, spill bookkeeping
/// — *before* `head` is bumped, and `head`/`tail` are free-running
/// counters that are the only commit protocol.  If a producer dies
/// mid-push, the robust mutex hands the next locker EOWNERDEAD,
/// pthread_mutex_consistent() restores the lock, and the uncommitted
/// slot is simply never observed (a spill block allocated before the
/// death leaks — bounded, and the world is about to shrink anyway).
/// Condvar waits use a ~100ms timedwait as a safety poll so a wakeup
/// lost to a peer death never strands a waiter.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <pthread.h>

#include "mpi/wire.hpp"

namespace peachy::mpi::detail {

inline constexpr std::uint32_t kShmMagic = 0x50534D31;  // "PSM1"
inline constexpr std::size_t kShmInlineBytes = 1024;    ///< inline payload capacity per slot
inline constexpr std::size_t kShmRingSlots = 64;
inline constexpr std::size_t kShmSpillBytes = std::size_t{16} << 20;  ///< spill arena per ring
inline constexpr std::uint64_t kShmSpillNull = ~std::uint64_t{0};

struct ShmSlot {
  FrameHeader hdr;
  std::uint64_t spill_off = kShmSpillNull;  ///< offset into the ring's spill arena, or null
  std::uint64_t spill_cap = 0;              ///< allocated spill block size (>= hdr.bytes)
  std::byte inline_bytes[kShmInlineBytes];
};

struct ShmRing {
  pthread_mutex_t mu;        ///< PROCESS_SHARED | ROBUST
  pthread_cond_t not_empty;  ///< PROCESS_SHARED, CLOCK_MONOTONIC
  pthread_cond_t not_full;
  std::uint64_t head = 0;       ///< next slot index to write (free-running)
  std::uint64_t tail = 0;       ///< next slot index to read (free-running)
  std::uint64_t free_head = 0;  ///< offset of first free spill block (offset-sorted list)
  ShmSlot slots[kShmRingSlots];
};

struct ShmSegHeader {
  std::uint32_t magic = 0;
  std::uint32_t nprocs = 0;
  std::uint64_t spill_bytes = 0;  ///< spill arena size per ring
};

/// A mapped segment (creator or attacher side).
struct ShmView {
  void* base = nullptr;
  std::size_t bytes = 0;

  [[nodiscard]] ShmSegHeader* header() const noexcept {
    return static_cast<ShmSegHeader*>(base);
  }
  [[nodiscard]] ShmRing* ring(int proc) const noexcept;
  [[nodiscard]] std::byte* spill(int proc) const noexcept;
  [[nodiscard]] explicit operator bool() const noexcept { return base != nullptr; }
};

[[nodiscard]] std::size_t shm_segment_bytes(int nprocs, std::size_t spill_bytes);

/// Create + map a fresh segment (`O_CREAT|O_EXCL`; a stale same-name
/// segment from a crashed earlier run is unlinked and creation retried
/// once).  Initializes every ring's mutex/condvars/free list.
[[nodiscard]] ShmView shm_create(const std::string& name, int nprocs, std::size_t spill_bytes);

/// Map an existing segment by name; validates the magic.
[[nodiscard]] ShmView shm_attach(const std::string& name);

void shm_detach(ShmView& view) noexcept;

/// Push one frame into `proc`'s ring.  Blocks (condvar) while the ring
/// is full or the spill arena can't fit the payload; bails out and
/// returns false if `give_up` becomes true while waiting (used to stop
/// filling the ring of a process known to be dead).  A payload larger
/// than the whole spill arena is a named error.
bool ring_push(const ShmView& view, int proc, const FrameHeader& h, const std::byte* payload,
               const std::atomic<bool>* give_up = nullptr);

/// Pop one frame from `proc`'s ring into `h`/`payload` (payload is
/// resized to fit).  Blocks until a frame arrives; returns false once
/// `stop` is true and the ring is empty.  The spill block (if any) is
/// freed before return.
bool ring_pop(const ShmView& view, int proc, FrameHeader& h, std::vector<std::byte>& payload,
              const std::atomic<bool>& stop);

}  // namespace peachy::mpi::detail
