#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace peachy::support {

double mean(std::span<const double> xs) {
  PEACHY_CHECK(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  PEACHY_CHECK(xs.size() >= 2, "variance needs at least 2 samples");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double percentile(std::span<const double> xs, double q) {
  PEACHY_CHECK(!xs.empty(), "percentile of empty sample");
  PEACHY_CHECK(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  PEACHY_CHECK(!xs.empty(), "summarize of empty sample");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? std::sqrt(variance(xs)) : 0.0;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.p50 = percentile(xs, 0.50);
  s.p95 = percentile(xs, 0.95);
  return s;
}

double chi_squared_uniform(std::span<const std::uint64_t> observed) {
  PEACHY_CHECK(!observed.empty(), "chi-squared of empty histogram");
  std::uint64_t total = 0;
  for (std::uint64_t c : observed) total += c;
  PEACHY_CHECK(total > 0, "chi-squared of all-zero histogram");
  const double expected = static_cast<double>(total) / static_cast<double>(observed.size());
  double chi2 = 0.0;
  for (std::uint64_t c : observed) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

double load_imbalance_cv(std::span<const double> loads) {
  PEACHY_CHECK(!loads.empty(), "imbalance of empty load vector");
  if (loads.size() == 1) return 0.0;
  const double m = mean(loads);
  if (m == 0.0) return 0.0;
  return std::sqrt(variance(loads)) / m;
}

std::string to_string(const Summary& s) {
  std::ostringstream os;
  os << "n=" << s.count << " mean=" << s.mean << " sd=" << s.stddev << " min=" << s.min
     << " p50=" << s.p50 << " p95=" << s.p95 << " max=" << s.max;
  return os.str();
}

}  // namespace peachy::support
