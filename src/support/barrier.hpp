#pragma once
/// \file barrier.hpp
/// \brief A reusable cyclic barrier.
///
/// This is the synchronization primitive behind `peachy::chapel::Barrier`
/// (heat-equation Part 2) and the mini-MPI collective implementations.  It
/// is a classic sense-reversing barrier: unlike std::barrier it allows the
/// participant count to be chosen at runtime and the same object to be
/// reused for an unbounded number of phases.

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "support/check.hpp"

namespace peachy::support {

/// Cyclic barrier for `parties` threads.  `arrive_and_wait()` blocks until
/// all parties have arrived, then releases every waiter and resets.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(std::size_t parties) : parties_{parties} {
    PEACHY_CHECK(parties > 0, "barrier needs at least one party");
  }

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Block until all parties arrive.  Returns the phase index that just
  /// completed (useful for debugging lockstep algorithms).
  std::size_t arrive_and_wait() {
    std::unique_lock lock{mu_};
    const std::size_t my_phase = phase_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != my_phase; });
    }
    return my_phase;
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t phase_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace peachy::support
