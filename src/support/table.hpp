#pragma once
/// \file table.hpp
/// \brief Fixed-width console table writer used by the experiment harnesses
/// to print paper-style result tables.

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

namespace peachy::support {

/// Accumulates rows of heterogeneous cells and renders an aligned ASCII
/// table.  Numbers are formatted with sensible precision.
class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t, std::uint64_t>;

  /// Set (or replace) the header row.
  Table& header(std::vector<std::string> cols);

  /// Append a data row; its arity must match the header if one was set.
  Table& row(std::vector<Cell> cells);

  /// Render with column alignment, `|` separators, and a rule under the
  /// header.
  [[nodiscard]] std::string to_string() const;

  /// to_string() + write to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  static std::string render_cell(const Cell& c);

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace peachy::support
