#include "support/cli.hpp"

#include <cstdlib>
#include <iostream>

namespace peachy::support {

Cli::Cli(int argc, const char* const* argv) {
  PEACHY_CHECK(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    PEACHY_CHECK(arg.rfind("--", 0) == 0, "expected --key[=value], got '" + arg + "'");
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      pending_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string{argv[i + 1]}.rfind("--", 0) != 0) {
      pending_[arg] = argv[++i];
    } else {
      pending_[arg] = "true";  // bare flag
    }
  }
}

std::optional<std::string> Cli::take(const std::string& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return std::nullopt;
  std::string v = it->second;
  pending_.erase(it);
  return v;
}

void Cli::describe(const std::string& key, const std::string& def, const std::string& help) {
  described_.push_back({key, def, help});
}

bool Cli::flag(const std::string& key, const std::string& help) {
  describe(key, "false", help);
  const auto raw = take(key);
  if (!raw) return false;
  return *raw == "true" || *raw == "1" || *raw == "yes";
}

void Cli::finish() {
  if (help_requested_) {
    std::cout << "usage: " << program_ << " [--key=value ...]\n\noptions:\n";
    for (const auto& d : described_) {
      std::cout << "  --" << d.key << " (default: " << d.def << ")";
      if (!d.help.empty()) std::cout << "  " << d.help;
      std::cout << '\n';
    }
    std::exit(0);
  }
  if (!pending_.empty()) {
    std::string unknown;
    for (const auto& [k, v] : pending_) unknown += " --" + k;
    throw Error{"unknown option(s):" + unknown + " (try --help)"};
  }
}

}  // namespace peachy::support
