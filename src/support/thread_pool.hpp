#pragma once
/// \file thread_pool.hpp
/// \brief Work-stealing thread pool.
///
/// This is the shared execution engine for the OpenMP-style assignment
/// variants (`kmeans`, `knn`), the spark RDD scheduler, and the Chapel
/// `forall` construct.  Each worker owns a deque; tasks submitted from a
/// worker go to its own deque (LIFO for locality), idle workers steal from
/// the FIFO end of a victim's deque — the classic Cilk/TBB discipline.
///
/// The pool deliberately exposes *task counters* (spawned, stolen) because
/// several paper experiments (T-HT-1's forall-respawn overhead) report them.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace peachy::support {

/// Fixed-size work-stealing pool.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawn `threads` workers (>=1).  Defaults to hardware concurrency.
  explicit ThreadPool(std::size_t threads = default_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Thread-safe; may be called from worker threads.
  /// Worker-thread submits go to the caller's own deque (LIFO locality);
  /// external submits go to an idle worker's empty queue if one exists,
  /// else the shortest queue (ties rotate via an advancing scan start).
  void submit(Task task);

  /// Enqueue a callable returning R and get a future for its result.
  template <typename F, typename R = std::invoke_result_t<F>>
  [[nodiscard]] std::future<R> submit_future(F&& f) {
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> fut = prom->get_future();
    submit([prom, fn = std::forward<F>(f)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          prom->set_value();
        } else {
          prom->set_value(fn());
        }
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
    });
    return fut;
  }

  /// Block until every submitted task (including tasks spawned by tasks)
  /// has finished.  May be called from a non-worker thread only.
  ///
  /// If any raw-submit() task threw since the last wait_idle(), the FIRST
  /// such exception is rethrown here (later ones are dropped), and the
  /// pool remains fully usable — workers survive task exceptions.  Tasks
  /// submitted via submit_future() deliver their exceptions through the
  /// future instead and never surface here.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Total tasks executed since construction.
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Total tasks obtained by stealing from another worker's deque.
  [[nodiscard]] std::uint64_t tasks_stolen() const noexcept {
    return tasks_stolen_.load(std::memory_order_relaxed);
  }

  /// Index of the calling worker within this pool, or SIZE_MAX if the
  /// caller is not one of this pool's workers.
  [[nodiscard]] std::size_t worker_index() const noexcept;

  /// std::thread::hardware_concurrency() with a floor of 1.
  [[nodiscard]] static std::size_t default_concurrency() noexcept;

  /// Process-wide shared pool (lazily constructed with default concurrency).
  [[nodiscard]] static ThreadPool& shared();

 private:
  /// A queued task plus its submit timestamp (obs clock; 0 when tracing
  /// was off at submit time) so the worker can record dwell time.
  struct Item {
    Task task;
    std::uint64_t submit_ns;
  };

  struct WorkerQueue {
    std::deque<Item> deque;
    std::mutex mu;
    /// Mirror of deque.size(), maintained under mu but readable without
    /// it: submit() scores candidate queues lock-free.
    std::atomic<std::size_t> size{0};
    /// True while this queue's worker is inside a task body.
    std::atomic<bool> busy{false};
  };

  bool try_pop_local(std::size_t self, Item& out);
  bool try_steal(std::size_t self, Item& out);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mu_;
  std::condition_variable work_cv_;   // signalled when work arrives
  std::condition_variable idle_cv_;   // signalled when pool may be idle
  /// Bumped under idle_mu_ after every enqueue.  A worker snapshots this
  /// *before* scanning the queues and sleeps on "tickets_ changed" — the
  /// publication workers wait on, closing the scan-to-wait window that a
  /// bare notify_one() could fall into (see worker_loop).
  std::atomic<std::uint64_t> tickets_{0};
  std::atomic<std::size_t> pending_{0};  // submitted but not yet finished
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::size_t> rr_{0};  // rotating scan start for external submits

  /// First exception to escape a raw-submit task since the last
  /// wait_idle(); rethrown (and cleared) there.  Without this capture the
  /// exception would unwind the worker thread and std::terminate.
  std::mutex task_err_mu_;
  std::exception_ptr task_error_;
};

}  // namespace peachy::support
