#include "support/thread_pool.hpp"

#include <utility>

#include "analysis/hooks.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::support {

namespace {
// Which pool (if any) the current thread works for, and its index.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = static_cast<std::size_t>(-1);
}  // namespace

std::size_t ThreadPool::default_concurrency() noexcept {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool(std::size_t threads) {
  PEACHY_CHECK(threads >= 1, "thread pool needs at least one worker");
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{idle_mu_};
    stop_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::worker_index() const noexcept {
  return tls_pool == this ? tls_index : static_cast<std::size_t>(-1);
}

void ThreadPool::submit(Task task) {
  PEACHY_CHECK(task != nullptr, "null task submitted");
  // Prefer the caller's own deque when the caller is one of our workers
  // (LIFO locality); otherwise pick the least-loaded queue: a queued task
  // outweighs a busy worker (the busy one finishes sooner than a whole
  // backlog drains), so score = 2*queued + busy, lowest wins.  The scan
  // start rotates so exact ties spread across workers instead of piling
  // onto queue 0.  Scores are racy snapshots — a stale pick costs one
  // steal, not correctness.
  std::size_t target = worker_index();
  if (target == static_cast<std::size_t>(-1)) {
    const std::size_t n = queues_.size();
    const std::size_t start = rr_.fetch_add(1, std::memory_order_relaxed) % n;
    std::size_t best_score = static_cast<std::size_t>(-1);
    for (std::size_t off = 0; off < n; ++off) {
      const std::size_t cand = (start + off) % n;
      const auto& q = *queues_[cand];
      const std::size_t score = 2 * q.size.load(std::memory_order_relaxed) +
                                (q.busy.load(std::memory_order_relaxed) ? 1 : 0);
      if (score < best_score) {
        best_score = score;
        target = cand;
        if (score == 0) break;  // idle worker with an empty queue: optimal
      }
    }
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint64_t submit_ns = obs::enabled() ? obs::now_ns() : 0;
  {
    std::lock_guard lock{queues_[target]->mu};
    queues_[target]->deque.push_back(Item{std::move(task), submit_ns});
    queues_[target]->size.store(queues_[target]->deque.size(), std::memory_order_relaxed);
  }
  // Publish "work arrived" under idle_mu_.  A bare notify_one() here can
  // land in the window after a worker scanned the queues empty but before
  // it blocked on work_cv_ — the notify is lost and (with the old
  // wait_for(1ms) poll) the task waits out the poll interval.  Bumping the
  // ticket under the mutex changes the predicate workers sleep on, so the
  // notify cannot be missed and the poll became a plain wait.
  {
    std::lock_guard lock{idle_mu_};
    tickets_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop_local(std::size_t self, Item& out) {
  auto& q = *queues_[self];
  std::lock_guard lock{q.mu};
  if (q.deque.empty()) return false;
  out = std::move(q.deque.back());  // LIFO end: freshest task, best locality
  q.deque.pop_back();
  q.size.store(q.deque.size(), std::memory_order_relaxed);
  return true;
}

bool ThreadPool::try_steal(std::size_t self, Item& out) {
  const std::size_t n = queues_.size();
  for (std::size_t off = 1; off < n; ++off) {
    auto& q = *queues_[(self + off) % n];
    std::lock_guard lock{q.mu};
    if (!q.deque.empty()) {
      out = std::move(q.deque.front());  // FIFO end: oldest task, biggest chunk
      q.deque.pop_front();
      q.size.store(q.deque.size(), std::memory_order_relaxed);
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) {
        static obs::Counter& steals = obs::counter("pool.steals");
        steals.add(1);
      }
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_pool = this;
  tls_index = self;
  for (;;) {
    // Snapshot the ticket BEFORE scanning.  Any submit whose ticket bump
    // is visible here finished its push first (push under the queue mutex
    // happens-before the release fetch_add under idle_mu_), so the scan
    // below will find it; any later submit changes tickets_ and defeats
    // the wait predicate.  Either way no enqueue can slip past a sleeping
    // worker — which is what lets the wait below be untimed.
    const std::uint64_t seen = tickets_.load(std::memory_order_acquire);
    Item item;
    if (try_pop_local(self, item) || try_steal(self, item)) {
      if (item.submit_ns != 0 && obs::enabled()) {
        static obs::Histogram& dwell = obs::histogram("pool.dwell_ns");
        dwell.note(obs::now_ns() - item.submit_ns);
      }
      queues_[self]->busy.store(true, std::memory_order_relaxed);
      {
        // Default identity for raw submits: this worker, in the shared
        // "unstructured" epoch (no join information).  Structured regions
        // (parallel_for / forall) override it with their own TaskScope.
        const analysis::TaskScope scope{self, analysis::kUnstructuredEpoch};
        const obs::SpanScope span{"pool", "task"};
        try {
          item.task();
        } catch (...) {
          // An exception unwinding out of a worker thread is
          // std::terminate; capture the first one for wait_idle() to
          // rethrow and keep this worker (and the pool) alive.
          std::lock_guard elock{task_err_mu_};
          if (!task_error_) task_error_ = std::current_exception();
        }
      }
      queues_[self]->busy.store(false, std::memory_order_relaxed);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock lock{idle_mu_};
    if (stop_.load(std::memory_order_acquire)) return;
    if (pending_.load(std::memory_order_acquire) == 0) {
      idle_cv_.notify_all();
    }
    work_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             tickets_.load(std::memory_order_relaxed) != seen;
    });
    if (obs::enabled()) {
      static obs::Counter& wakeups = obs::counter("pool.idle_wakeups");
      wakeups.add(1);
    }
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::wait_idle() {
  PEACHY_CHECK(worker_index() == static_cast<std::size_t>(-1),
               "wait_idle() must not be called from a pool worker (deadlock)");
  {
    std::unique_lock lock{idle_mu_};
    idle_cv_.wait(lock, [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }
  // Surface the first task exception now that the pool is quiet; clearing
  // it keeps the pool usable for the next batch of work.
  std::exception_ptr err;
  {
    std::lock_guard lock{task_err_mu_};
    err = std::exchange(task_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace peachy::support
