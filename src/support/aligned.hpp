#pragma once
/// \file aligned.hpp
/// \brief Cache-line aligned allocation for the numeric hot paths.
///
/// The kernel layer (src/kernels) operates on contiguous double buffers
/// and wants them aligned to the widest vector register (and to cache
/// lines, so two buffers never share a line).  `aligned_vector<T>` is a
/// drop-in std::vector whose storage starts on a 64-byte boundary —
/// PointSet coordinates, centroid panels, and kernel scratch all use it.

#include <cstddef>
#include <new>
#include <vector>

namespace peachy::support {

/// Minimum alignment for kernel-visible buffers: one cache line, which
/// also covers any SIMD register width up to 512 bits.
inline constexpr std::size_t kKernelAlignment = 64;

/// std::allocator drop-in that over-aligns every allocation.
template <typename T, std::size_t Align = kKernelAlignment>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
};

/// Contiguous buffer whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace peachy::support
