#pragma once
/// \file hash.hpp
/// \brief Deterministic hashing utilities.
///
/// MapReduce's shuffle and spark's hash partitioner must place the same key
/// on the same partition on every run and on every build, so peachy never
/// uses std::hash (whose values are unspecified and may be salted).  These
/// hashes are fixed algorithms with published constants.

#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

namespace peachy::support {

/// 64-bit FNV-1a over a byte range.  Stable across platforms and runs.
[[nodiscard]] constexpr std::uint64_t fnv1a64(const char* data, std::size_t n,
                                              std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  return fnv1a64(s.data(), s.size());
}

/// SplitMix64 finalizer: a strong 64->64 bit mixer (Steele et al. 2014).
/// Used to turn trivially-hashable integers into well-distributed hashes.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost::hash_combine recipe extended to 64 bits).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Stable hash dispatcher: integers via mix64, strings via FNV-1a,
/// floating point via bit pattern, anything else must provide
/// `std::uint64_t stable_hash_value(const T&)` via ADL.
template <typename T>
[[nodiscard]] std::uint64_t stable_hash(const T& v) noexcept {
  if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
    return mix64(static_cast<std::uint64_t>(v));
  } else if constexpr (std::is_floating_point_v<T>) {
    std::uint64_t bits = 0;
    double d = static_cast<double>(v);
    static_assert(sizeof(bits) >= sizeof(d));
    std::memcpy(&bits, &d, sizeof(d));
    return mix64(bits);
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    return fnv1a64(std::string_view{v});
  } else {
    return stable_hash_value(v);  // ADL extension point
  }
}

template <typename A, typename B>
[[nodiscard]] std::uint64_t stable_hash(const std::pair<A, B>& p) noexcept {
  return hash_combine(stable_hash(p.first), stable_hash(p.second));
}

}  // namespace peachy::support
