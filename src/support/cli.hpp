#pragma once
/// \file cli.hpp
/// \brief Chapel-style `config const` command-line parsing.
///
/// Chapel programs expose tunables as `config const n = 1000;` settable via
/// `./prog --n=2000`.  peachy's examples and bench harnesses use the same
/// convention so that every experiment's parameters are overridable:
///
///   peachy::support::Cli cli{argc, argv};
///   const auto n    = cli.get<std::size_t>("n", 1000, "grid points");
///   const auto rate = cli.get<double>("rate", 0.13, "randomization p");
///   cli.finish();  // rejects unknown flags, handles --help

#include <cstddef>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace peachy::support {

/// Minimal `--key=value` / `--key value` / `--flag` parser.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Read a typed option with a default; records it for --help.
  template <typename T>
  [[nodiscard]] T get(const std::string& key, T def, const std::string& help = "") {
    describe(key, to_display(def), help);
    const std::optional<std::string> raw = take(key);
    if (!raw) return def;
    return parse_as<T>(key, *raw);
  }

  /// True if `--key` was passed (as a bare flag or with a truthy value).
  [[nodiscard]] bool flag(const std::string& key, const std::string& help = "");

  /// Call after all get()/flag() calls: prints usage and exits on --help,
  /// throws peachy::Error on unrecognized options.
  void finish();

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  template <typename T>
  static std::string to_display(const T& v) {
    std::ostringstream os;
    os << std::boolalpha << v;
    return os.str();
  }

  template <typename T>
  T parse_as(const std::string& key, const std::string& raw) {
    std::istringstream is{raw};
    T v{};
    is >> std::boolalpha >> v;
    PEACHY_CHECK(!is.fail(), "bad value for --" + key + ": '" + raw + "'");
    return v;
  }

  std::optional<std::string> take(const std::string& key);
  void describe(const std::string& key, const std::string& def, const std::string& help);

  std::string program_;
  std::map<std::string, std::string> pending_;  // parsed but not yet consumed
  bool help_requested_ = false;
  struct Described {
    std::string key, def, help;
  };
  std::vector<Described> described_;
};

template <>
inline std::string Cli::parse_as<std::string>(const std::string&, const std::string& raw) {
  return raw;
}

}  // namespace peachy::support
