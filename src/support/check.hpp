#pragma once
/// \file check.hpp
/// \brief Error handling primitives shared by every peachy module.
///
/// peachy follows the C++ Core Guidelines' advice to use exceptions for
/// errors (E.2) and to state preconditions (I.5).  `PEACHY_CHECK` is the
/// precondition/invariant gate used across the library: it is always on
/// (assignments are teaching code — silent corruption is worse than a
/// throw), and it produces a message that names the failing expression and
/// source location.

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace peachy {

/// Exception thrown by `PEACHY_CHECK` and by explicit library validation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const std::string& msg,
                                      const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error{os.str()};
}

}  // namespace detail

}  // namespace peachy

/// Validate a condition; throws peachy::Error with location info on failure.
/// Usage: PEACHY_CHECK(k > 0, "k must be positive, got " + std::to_string(k));
#define PEACHY_CHECK(expr, ...)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::peachy::detail::check_failed(                                        \
          #expr, ::std::string{__VA_OPT__(__VA_ARGS__)},                     \
          ::std::source_location::current());                                \
    }                                                                        \
  } while (false)
