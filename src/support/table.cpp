#include "support/table.hpp"

#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace peachy::support {

Table& Table::header(std::vector<std::string> cols) {
  PEACHY_CHECK(!cols.empty(), "empty header");
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<Cell> cells) {
  PEACHY_CHECK(header_.empty() || cells.size() == header_.size(),
               "row arity does not match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render_cell(const Cell& c) {
  return std::visit(
      [](const auto& v) -> std::string {
        using V = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<V, std::string>) {
          return v;
        } else if constexpr (std::is_same_v<V, double>) {
          std::ostringstream os;
          const double a = std::fabs(v);
          if (v == 0.0) {
            os << "0";
          } else if (a >= 1e6 || a < 1e-3) {
            os.precision(3);
            os << std::scientific << v;
          } else {
            os.precision(a >= 100 ? 1 : 3);
            os << std::fixed << v;
          }
          return os.str();
        } else {
          return std::to_string(v);
        }
      },
      c);
}

std::string Table::to_string() const {
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size() + 1);
  std::size_t ncols = header_.size();
  if (!header_.empty()) rendered.push_back(header_);
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const auto& c : r) cells.push_back(render_cell(c));
    ncols = std::max(ncols, cells.size());
    rendered.push_back(std::move(cells));
  }
  std::vector<std::size_t> width(ncols, 0);
  for (const auto& r : rendered) {
    for (std::size_t i = 0; i < r.size(); ++i) width[i] = std::max(width[i], r[i].size());
  }
  std::ostringstream os;
  for (std::size_t ri = 0; ri < rendered.size(); ++ri) {
    const auto& r = rendered[ri];
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i ? " | " : "");
      os << r[i] << std::string(width[i] - r[i].size(), ' ');
    }
    os << '\n';
    if (ri == 0 && !header_.empty()) {
      for (std::size_t i = 0; i < ncols; ++i) {
        os << (i ? "-+-" : "") << std::string(width[i], '-');
      }
      os << '\n';
    }
  }
  return os.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

}  // namespace peachy::support
