#pragma once
/// \file parallel_for.hpp
/// \brief OpenMP-style parallel loop and reduction helpers.
///
/// The k-means and kNN assignments are written, in the paper, against
/// `#pragma omp parallel for` with `critical` / `atomic` / `reduction`
/// clauses.  peachy reproduces that programming model as a library:
///
///   parallel_for(0, n, [&](std::size_t i){ ... });                 // omp for
///   parallel_reduce(0, n, 0.0, plus, [&](i){ return f(i); });      // reduction
///   parallel_for_threads(t, [&](tid, lo, hi){ ... });              // static schedule,
///                                                                  // explicit thread id
///
/// All run on a caller-supplied ThreadPool (or the process-shared one), and
/// `parallel_for_threads` guarantees the *static block schedule* OpenMP uses
/// by default — required by the traffic assignment, whose reproducibility
/// argument depends on each thread knowing exactly which iterations it owns.

#include <cstddef>
#include <functional>
#include <vector>

#include "analysis/hooks.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "tune/tune.hpp"

namespace peachy::support {

/// Static block partition of [0,n): block `t` of `parts` is [begin,end).
struct BlockRange {
  std::size_t begin;
  std::size_t end;
};

/// Compute the t-th block of a near-even static partition of [0,n) into
/// `parts` blocks (first n%parts blocks get one extra element — the same
/// rule OpenMP static scheduling and Chapel's Block distribution use).
[[nodiscard]] inline BlockRange static_block(std::size_t n, std::size_t parts, std::size_t t) {
  PEACHY_CHECK(parts > 0, "static_block: parts must be positive");
  PEACHY_CHECK(t < parts, "static_block: index out of range");
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  const std::size_t begin = t * base + std::min(t, extra);
  const std::size_t len = base + (t < extra ? 1 : 0);
  return {begin, begin + len};
}

/// Compiled-in default grain for the element-wise parallel_for: loops at
/// or below this many iterations run their blocks inline on the calling
/// thread.  Sized so that a body has to be worth at least a few
/// microseconds total before task dispatch (futures + wakeups) can pay
/// for itself.  This is also the default of tune::Tunables::
/// parallel_for_grain — a loaded profile can move the crossover.
inline constexpr std::size_t kInlineGrain = 2048;

/// Sentinel grain: resolve from the active tuning profile
/// (tune::active().parallel_for_grain, which defaults to kInlineGrain).
/// This is parallel_for's default, so every call site follows the
/// profile unless it pins a grain explicitly (0 = always dispatch).
inline constexpr std::size_t kGrainAuto = static_cast<std::size_t>(-1);

/// Run body(tid, lo, hi) on `threads` pool tasks, one per static block of
/// [0,n).  Blocks until all complete.  Equivalent to
/// `#pragma omp parallel num_threads(threads)` + static for schedule.
///
/// `inline_exec` switches only the *physical* dispatch (run the blocks on
/// the calling thread instead of pool tasks); the logical structure —
/// block partition, epoch, per-block task scopes — is identical either
/// way, so the analysis layer sees the same parallel region.
template <typename Body>
void parallel_for_threads(ThreadPool& pool, std::size_t n, std::size_t threads, Body&& body,
                          bool inline_exec = false) {
  PEACHY_CHECK(threads > 0, "parallel_for_threads: threads must be positive");
  const obs::SpanScope region_span{"par", "parallel_for", "n",
                                   static_cast<std::int64_t>(n)};
  // One epoch per region: blocks of the same region may race with each
  // other, blocks of different regions are separated by the join below.
  // Identities are published even on the inline path — the analysis layer
  // reasons about the *logical* parallel structure, so a race is caught
  // regardless of how many cores actually ran the blocks.
  const std::uint64_t epoch = analysis::begin_parallel_region();
  // Nested parallelism guard: a pool worker blocking on futures that only
  // its own pool can run is the classic fork-join deadlock.  When the
  // caller is already one of this pool's workers, run the blocks inline —
  // outer-level parallelism already covers the machine.
  if (threads == 1 || inline_exec || pool.worker_index() != static_cast<std::size_t>(-1)) {
    for (std::size_t t = 0; t < threads; ++t) {
      const BlockRange r = static_block(n, threads, t);
      const analysis::TaskScope scope{t, epoch};
      body(t, r.begin, r.end);
    }
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const BlockRange r = static_block(n, threads, t);
    futs.push_back(pool.submit_future([&body, t, r, epoch] {
      const analysis::TaskScope scope{t, epoch};
      body(t, r.begin, r.end);
    }));
  }
  for (auto& f : futs) f.get();  // rethrows the first worker exception
}

/// Element-wise parallel for over [begin,end) with static chunking across
/// the whole pool.  `body(i)` must be safe to run concurrently for
/// distinct i.
///
/// Loops of at most `grain` iterations run inline on the calling thread
/// (same partition, same logical region — just no task dispatch), so tiny
/// loops don't pay futures-and-wakeups overhead that dwarfs their work.
/// Pass grain = 0 to always dispatch: bodies that are expensive per
/// iteration (or callers measuring dispatch itself) want pool tasks even
/// for small n.  The default, kGrainAuto, reads the active tuning
/// profile's grain (= kInlineGrain unless a profile moved it).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = kGrainAuto) {
  if (begin >= end) return;
  if (grain == kGrainAuto) grain = tune::active().parallel_for_grain;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, pool.thread_count());
  const bool inline_exec = grain != 0 && n <= grain;
  parallel_for_threads(
      pool, n, parts,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(begin + i);
      },
      inline_exec);
}

/// Convenience overload on the shared pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body) {
  parallel_for(ThreadPool::shared(), begin, end, std::forward<Body>(body));
}

/// Parallel reduction: combines `map(i)` for i in [begin,end) with `op`,
/// starting from `init` (per-thread), then combines partials in thread
/// order — deterministic for a fixed thread count.
template <typename T, typename Op, typename Map>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end, T init,
                                Op op, Map map) {
  if (begin >= end) return init;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(n, pool.thread_count());
  std::vector<T> partials(parts, init);
  parallel_for_threads(pool, n, parts, [&](std::size_t t, std::size_t lo, std::size_t hi) {
    T acc = init;
    for (std::size_t i = lo; i < hi; ++i) acc = op(std::move(acc), map(begin + i));
    partials[t] = std::move(acc);
  });
  T total = std::move(partials[0]);
  for (std::size_t t = 1; t < parts; ++t) total = op(std::move(total), std::move(partials[t]));
  return total;
}

}  // namespace peachy::support
