#pragma once
/// \file timer.hpp
/// \brief Wall-clock timing helpers used by the benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace peachy::support {

/// Monotonic stopwatch.  `elapsed_s()` may be called repeatedly; `reset()`
/// restarts the epoch.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_{Clock::now()} {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds since construction or last reset().
  [[nodiscard]] double elapsed_s() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds since construction or last reset().
  [[nodiscard]] double elapsed_ms() const noexcept { return elapsed_s() * 1e3; }

  /// Nanoseconds since construction or last reset().
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Time a callable once and return seconds.
template <typename F>
[[nodiscard]] double time_once(F&& f) {
  Stopwatch sw;
  f();
  return sw.elapsed_s();
}

/// Time a callable `reps` times and return the *minimum* per-rep seconds
/// (minimum is the standard noise-robust estimator for microbenchmarks).
template <typename F>
[[nodiscard]] double time_best_of(int reps, F&& f) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const double t = time_once(f);
    if (t < best) best = t;
  }
  return best;
}

}  // namespace peachy::support
