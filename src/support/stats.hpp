#pragma once
/// \file stats.hpp
/// \brief Small descriptive-statistics helpers for harness reporting and
/// for the PRNG statistical self-tests.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace peachy::support {

/// Summary of a sample: count, mean, unbiased stddev, min/max, percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< unbiased (n-1) sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Compute a Summary over a sample.  Throws peachy::Error on empty input.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Arithmetic mean.  Throws on empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (divides by n-1).  Throws if n < 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0,1].  Throws on empty input or
/// q outside [0,1].
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Pearson chi-squared statistic of observed counts vs a uniform
/// expectation.  Used by the PRNG uniformity self-tests.
[[nodiscard]] double chi_squared_uniform(std::span<const std::uint64_t> observed);

/// Coefficient of variation of a set of per-worker loads: stddev/mean.
/// 0 means perfectly balanced.  This is the imbalance measure reported by
/// the HPO scheduler benchmark (experiment T-HPO-1).
[[nodiscard]] double load_imbalance_cv(std::span<const double> loads);

/// Render a Summary on one line, e.g. "n=30 mean=1.2ms sd=0.1 p50=1.1 p95=1.4".
[[nodiscard]] std::string to_string(const Summary& s);

}  // namespace peachy::support
