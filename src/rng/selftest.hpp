#pragma once
/// \file selftest.hpp
/// \brief Statistical self-tests for peachy generators.
///
/// These are not TestU01 — they are the sanity battery an instructor runs
/// to demonstrate that a generator "should nonetheless be nearly
/// indistinguishable from being uniformly distributed" (paper §5): bin
/// uniformity (chi-squared), sample moments, and lag-1 serial correlation.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace peachy::rng {

/// Result of one statistical check.
struct SelfTestResult {
  std::string name;
  double statistic = 0.0;  ///< test statistic value
  double low = 0.0;        ///< acceptance interval lower bound
  double high = 0.0;       ///< acceptance interval upper bound
  bool pass = false;
};

/// Full battery output.
struct SelfTestReport {
  SelfTestResult uniformity;   ///< chi-squared over 256 bins
  SelfTestResult mean;         ///< sample mean vs 0.5
  SelfTestResult variance;     ///< sample variance vs 1/12
  SelfTestResult serial_corr;  ///< lag-1 autocorrelation vs 0
  [[nodiscard]] bool all_pass() const noexcept {
    return uniformity.pass && mean.pass && variance.pass && serial_corr.pass;
  }
  [[nodiscard]] std::string to_string() const;
};

namespace detail {
SelfTestReport run_battery_on_samples(const double* xs, std::size_t n);
}

/// Run the battery on `n` draws from generator `g` (consumes n draws).
template <typename Gen>
[[nodiscard]] SelfTestReport self_test(Gen& g, std::size_t n = 1u << 16) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = g.next_double();
  return detail::run_battery_on_samples(xs.data(), xs.size());
}

}  // namespace peachy::rng
