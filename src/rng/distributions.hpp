#pragma once
/// \file distributions.hpp
/// \brief Distribution adaptors over any peachy generator.
///
/// Generators expose `next_u64()/next_u32()/next_double()`; these free
/// functions turn raw draws into the distributions the assignments use.
/// Every function documents *exactly how many raw draws it consumes*,
/// because the traffic assignment's fast-forward arithmetic depends on a
/// fixed draw budget per simulation event.

#include <cmath>
#include <cstdint>

#include "support/check.hpp"

namespace peachy::rng {

/// Uniform double in [0,1).  Consumes exactly 1 draw.
template <typename Gen>
[[nodiscard]] double uniform01(Gen& g) {
  return g.next_double();
}

/// Uniform double in [lo,hi).  Consumes exactly 1 draw.
template <typename Gen>
[[nodiscard]] double uniform_real(Gen& g, double lo, double hi) {
  PEACHY_CHECK(lo <= hi, "uniform_real: lo > hi");
  return lo + (hi - lo) * g.next_double();
}

/// Uniform integer in [0,bound).  Consumes exactly 1 draw.
///
/// Uses the multiply-shift (Lemire) method *without* rejection: the tiny
/// modulo bias (≤ bound/2^64) is acceptable for simulation workloads and
/// the fixed draw count is required for reproducible fast-forwarding.
template <typename Gen>
[[nodiscard]] std::uint64_t uniform_below(Gen& g, std::uint64_t bound) {
  PEACHY_CHECK(bound > 0, "uniform_below: bound must be positive");
  const std::uint64_t x = g.next_u64();
  // 64x64 -> high 64 bits of the 128-bit product.
  __extension__ using Wide = unsigned __int128;
  return static_cast<std::uint64_t>((static_cast<Wide>(x) * bound) >> 64);
}

/// Uniform integer in [lo,hi] inclusive.  Consumes exactly 1 draw.
template <typename Gen>
[[nodiscard]] std::int64_t uniform_int(Gen& g, std::int64_t lo, std::int64_t hi) {
  PEACHY_CHECK(lo <= hi, "uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(g, span));
}

/// Bernoulli trial with probability p.  Consumes exactly 1 draw.
template <typename Gen>
[[nodiscard]] bool bernoulli(Gen& g, double p) {
  PEACHY_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return g.next_double() < p;
}

/// One standard-normal pair via Box–Muller.  Consumes exactly 2 draws.
/// A pair interface (instead of a cached single) keeps the draw budget
/// explicit for reproducible parallel use.
struct NormalPair {
  double first, second;
};

template <typename Gen>
[[nodiscard]] NormalPair normal_pair(Gen& g) {
  // Avoid log(0): shift u1 into (0,1].
  const double u1 = 1.0 - g.next_double();
  const double u2 = g.next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return {r * std::cos(theta), r * std::sin(theta)};
}

/// Single standard-normal draw (discards the pair's second value).
/// Consumes exactly 2 draws.
template <typename Gen>
[[nodiscard]] double normal(Gen& g, double mean = 0.0, double stddev = 1.0) {
  PEACHY_CHECK(stddev >= 0.0, "normal: negative stddev");
  return mean + stddev * normal_pair(g).first;
}

}  // namespace peachy::rng
