#pragma once
/// \file splitmix.hpp
/// \brief SplitMix64 — the standard seeding/stream-splitting generator.
///
/// Used across peachy to (a) expand a single user seed into many
/// well-separated seeds (one per thread / rank / model) and (b) as a fast
/// high-quality generator where reproducible fast-forward is not needed.

#include <cstdint>

#include "support/hash.hpp"

namespace peachy::rng {

/// SplitMix64 (Steele, Lea & Flood 2014).  Period 2^64, passes BigCrush.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed = 0) noexcept : state_{seed} {}

  constexpr std::uint64_t next_u64() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fast-forward: the state advances by a fixed increment per draw, so a
  /// jump of n steps is a single multiply-add.
  constexpr void discard(std::uint64_t n) noexcept {
    state_ += 0x9e3779b97f4a7c15ULL * n;
  }

  [[nodiscard]] constexpr std::uint64_t state() const noexcept { return state_; }

  friend constexpr bool operator==(const SplitMix64&, const SplitMix64&) = default;

 private:
  std::uint64_t state_;
};

/// Derive the `i`-th sub-seed from a master seed.  Distinct (seed, i)
/// pairs give decorrelated streams; used for per-thread / per-rank / per-
/// model generators where cross-stream reproducibility is NOT required.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t i) noexcept {
  return support::mix64(support::hash_combine(support::mix64(master), i));
}

}  // namespace peachy::rng
