#pragma once
/// \file shared_stream.hpp
/// \brief The reproducible shared-sequence abstraction (paper §5).
///
/// The traffic assignment's central idea: all threads consume *one logical
/// random sequence*, indexed globally, so output is bit-identical for any
/// thread count.  `SharedStream` wraps a fast-forwardable generator and
/// hands out positioned cursors:
///
///   SharedStream<Lcg64> stream{seed};
///   // thread t, owning global events [lo,hi):
///   auto cur = stream.cursor(lo);        // O(log lo) fast-forward
///   for (i in lo..hi) use(cur.next_double());
///
/// `ff_calls()` counts fast-forwards issued — the serial-overhead metric
/// the paper says limits scaling ("depends highly on how well they reduced
/// the cost of fast-forwarding").

#include <atomic>
#include <cstdint>

namespace peachy::rng {

/// A view into one logical random sequence, positionable in O(log n).
template <typename Gen>
class SharedStream {
 public:
  explicit SharedStream(std::uint64_t seed) noexcept : seed_{seed} {}

  /// A generator positioned at global index `pos` of the logical sequence.
  /// Each cursor() call counts as one fast-forward.
  [[nodiscard]] Gen cursor(std::uint64_t pos) const {
    ff_calls_.fetch_add(1, std::memory_order_relaxed);
    Gen g{seed_};
    g.discard(pos);
    return g;
  }

  /// The value at global index `pos` without keeping a cursor.
  [[nodiscard]] double value_at(std::uint64_t pos) const {
    Gen g = cursor(pos);
    return g.next_double();
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Number of cursor() fast-forwards issued so far (telemetry).
  [[nodiscard]] std::uint64_t ff_calls() const noexcept {
    return ff_calls_.load(std::memory_order_relaxed);
  }

  void reset_counters() noexcept { ff_calls_.store(0, std::memory_order_relaxed); }

 private:
  std::uint64_t seed_;
  mutable std::atomic<std::uint64_t> ff_calls_{0};
};

/// Leapfrog view: thread t of T sees elements t, t+T, t+2T, … of the
/// underlying sequence.  The classic alternative decomposition to
/// block-fast-forwarding; provided for the assignment's "variations".
template <typename Gen>
class LeapfrogView {
 public:
  LeapfrogView(std::uint64_t seed, std::uint64_t lane, std::uint64_t lanes)
      : gen_{seed}, stride_{lanes} {
    gen_.discard(lane);
    first_ = true;
  }

  double next_double() {
    if (!first_) gen_.discard(stride_ - 1);
    first_ = false;
    return gen_.next_double();
  }

  std::uint64_t next_u64() {
    if (!first_) gen_.discard(stride_ - 1);
    first_ = false;
    return gen_.next_u64();
  }

 private:
  Gen gen_;
  std::uint64_t stride_;
  bool first_;
};

}  // namespace peachy::rng
