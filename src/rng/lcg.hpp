#pragma once
/// \file lcg.hpp
/// \brief Linear congruential generators with O(log n) fast-forward.
///
/// The traffic assignment (paper §5) requires that a *shared* logical
/// random sequence be consumed by many threads such that the parallel
/// output is bit-identical to the serial output for any thread count.
/// The enabling primitive is "moving ahead" in the sequence quickly:
/// an LCG state update x' = a·x + c (mod m) is an affine map, and the
/// n-fold composition of an affine map can be computed with
/// square-and-multiply in O(log n) multiplications (F. Brown,
/// "Random number generation with arbitrary strides", 1994).
///
/// Two generators are provided:
///  * `Lcg64`   — modulus 2^64 (Knuth MMIX constants); fastest, the default
///                generator for the traffic simulation.
///  * `Minstd`  — the C++ standard library's minstd_rand parameters
///                (a=48271, m=2^31−1, c=0), matching the paper's reference
///                to "one of the C++ linearly congruent generators".

#include <cstdint>

namespace peachy::rng {

/// LCG modulo 2^64 with Knuth's MMIX multiplier.
///
/// `next_u64()` advances once and returns the new state.  The low bits of a
/// power-of-two-modulus LCG have short periods, so prefer `next_u32()`
/// (the high 32 bits) or `next_double()` (the high 53 bits) for anything
/// statistical.
class Lcg64 {
 public:
  using result_type = std::uint64_t;

  static constexpr std::uint64_t kMul = 6364136223846793005ULL;
  static constexpr std::uint64_t kInc = 1442695040888963407ULL;

  explicit constexpr Lcg64(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : state_{seed} {}

  /// Advance one step; returns the new raw state (full 64 bits).
  constexpr std::uint64_t next_u64() noexcept {
    state_ = state_ * kMul + kInc;
    return state_;
  }

  /// Advance one step; returns the high 32 bits (the statistically good part).
  constexpr std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  /// Advance one step; returns a double uniform in [0,1) using the top 53 bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fast-forward the generator by `n` steps in O(log n) time.  After
  /// `g.discard(n)`, `g` is in exactly the state reached by calling
  /// `next_u64()` n times.
  constexpr void discard(std::uint64_t n) noexcept {
    // Square-and-multiply on the affine map x -> a·x + c (mod 2^64):
    // composing f with itself doubles the stride: (a,c) -> (a², (a+1)·c).
    std::uint64_t acc_mul = 1, acc_inc = 0;
    std::uint64_t cur_mul = kMul, cur_inc = kInc;
    while (n > 0) {
      if (n & 1ULL) {
        acc_mul *= cur_mul;
        acc_inc = acc_inc * cur_mul + cur_inc;
      }
      cur_inc = (cur_mul + 1) * cur_inc;
      cur_mul *= cur_mul;
      n >>= 1;
    }
    state_ = state_ * acc_mul + acc_inc;
  }

  /// Current raw state (for checkpointing).
  [[nodiscard]] constexpr std::uint64_t state() const noexcept { return state_; }

  /// Restore a checkpointed state.
  constexpr void set_state(std::uint64_t s) noexcept { state_ = s; }

  friend constexpr bool operator==(const Lcg64&, const Lcg64&) = default;

 private:
  std::uint64_t state_;
};

/// minstd_rand-compatible LCG: x' = 48271·x mod (2^31 − 1).
///
/// State must be in [1, m−1]; a seed of 0 is mapped to 1 (matching the
/// standard library's behaviour of rejecting degenerate seeds).
class Minstd {
 public:
  using result_type = std::uint32_t;

  static constexpr std::uint64_t kMul = 48271;
  static constexpr std::uint64_t kMod = 2147483647;  // 2^31 - 1 (prime)

  explicit constexpr Minstd(std::uint32_t seed = 1) noexcept
      : state_{static_cast<std::uint32_t>(seed % kMod == 0 ? 1 : seed % kMod)} {}

  /// Advance one step; returns the new state, uniform in [1, m−1].
  constexpr std::uint32_t next_u32() noexcept {
    state_ = static_cast<std::uint32_t>((static_cast<std::uint64_t>(state_) * kMul) % kMod);
    return state_;
  }

  /// Advance one step; returns a double uniform in [0,1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u32() - 1) / static_cast<double>(kMod - 1);
  }

  /// Fast-forward by n steps: state *= 48271^n mod m, via modular
  /// exponentiation — O(log n).
  constexpr void discard(std::uint64_t n) noexcept {
    std::uint64_t mult = 1, base = kMul;
    while (n > 0) {
      if (n & 1ULL) mult = (mult * base) % kMod;
      base = (base * base) % kMod;
      n >>= 1;
    }
    state_ = static_cast<std::uint32_t>((static_cast<std::uint64_t>(state_) * mult) % kMod);
  }

  [[nodiscard]] constexpr std::uint32_t state() const noexcept { return state_; }
  constexpr void set_state(std::uint32_t s) noexcept { state_ = s % kMod == 0 ? 1 : s % kMod; }

  friend constexpr bool operator==(const Minstd&, const Minstd&) = default;

 private:
  std::uint32_t state_;
};

}  // namespace peachy::rng
