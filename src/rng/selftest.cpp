#include "rng/selftest.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace peachy::rng::detail {

namespace {

SelfTestResult check(std::string name, double stat, double low, double high) {
  SelfTestResult r;
  r.name = std::move(name);
  r.statistic = stat;
  r.low = low;
  r.high = high;
  r.pass = stat >= low && stat <= high;
  return r;
}

}  // namespace

SelfTestReport run_battery_on_samples(const double* xs, std::size_t n) {
  PEACHY_CHECK(n >= 1024, "self test needs at least 1024 samples");
  SelfTestReport rep;

  // Chi-squared uniformity over 256 bins.  For k-1 = 255 degrees of
  // freedom the statistic is ~N(255, sqrt(510)); accept within ±5 sigma.
  constexpr std::size_t kBins = 256;
  std::vector<std::uint64_t> hist(kBins, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto b = static_cast<std::size_t>(xs[i] * kBins);
    if (b >= kBins) b = kBins - 1;
    ++hist[b];
  }
  const double chi2 = support::chi_squared_uniform(hist);
  const double df = kBins - 1;
  const double sigma = std::sqrt(2.0 * df);
  rep.uniformity = check("chi2-uniformity", chi2, df - 5 * sigma, df + 5 * sigma);

  // Sample mean vs 0.5: standard error sqrt(1/12n); accept ±5 SE.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += xs[i];
  const double m = sum / static_cast<double>(n);
  const double se_mean = std::sqrt(1.0 / 12.0 / static_cast<double>(n));
  rep.mean = check("mean", m, 0.5 - 5 * se_mean, 0.5 + 5 * se_mean);

  // Sample variance vs 1/12; the variance of the variance estimator for
  // U(0,1) is (E[X^4]-centered...) — use a generous ±10% band.
  double ss = 0.0;
  for (std::size_t i = 0; i < n; ++i) ss += (xs[i] - m) * (xs[i] - m);
  const double var = ss / static_cast<double>(n - 1);
  rep.variance = check("variance", var, 1.0 / 12.0 * 0.9, 1.0 / 12.0 * 1.1);

  // Lag-1 serial correlation; for iid the estimator is ~N(0, 1/sqrt(n)).
  double num = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) num += (xs[i] - m) * (xs[i + 1] - m);
  const double corr = num / ss;
  const double se_corr = 1.0 / std::sqrt(static_cast<double>(n));
  rep.serial_corr = check("lag1-correlation", corr, -5 * se_corr, 5 * se_corr);

  return rep;
}

}  // namespace peachy::rng::detail

namespace peachy::rng {

std::string SelfTestReport::to_string() const {
  std::ostringstream os;
  for (const SelfTestResult* r : {&uniformity, &mean, &variance, &serial_corr}) {
    os << (r->pass ? "[pass] " : "[FAIL] ") << r->name << " = " << r->statistic << " (accept ["
       << r->low << ", " << r->high << "])\n";
  }
  return os.str();
}

}  // namespace peachy::rng
