#pragma once
/// \file philox.hpp
/// \brief Philox4x32-10 counter-based PRNG (Salmon et al., SC'11).
///
/// Counter-based generators make the traffic assignment's reproducibility
/// requirement *structural*: the i-th random number is a pure function of
/// (key, i), so "fast-forward" is just setting the counter — O(1).  peachy
/// ships Philox alongside the LCG so the bench harness can compare the two
/// fast-forward strategies (experiment T-RNG-1).

#include <array>
#include <cstdint>

namespace peachy::rng {

/// Philox4x32 with 10 rounds.  Produces 4×32-bit outputs per counter tick.
class Philox4x32 {
 public:
  using result_type = std::uint32_t;

  explicit constexpr Philox4x32(std::uint64_t key = 0, std::uint64_t start_index = 0) noexcept
      : key_{static_cast<std::uint32_t>(key), static_cast<std::uint32_t>(key >> 32)} {
    set_index(start_index);
  }

  /// Position the generator so the next draw is the `i`-th of the stream.
  constexpr void set_index(std::uint64_t i) noexcept {
    counter_ = i / 4;
    sub_ = static_cast<std::uint32_t>(i % 4);
    if (sub_ != 0) block_ = generate_block(counter_);
  }

  /// Stream position of the next draw.
  [[nodiscard]] constexpr std::uint64_t index() const noexcept { return counter_ * 4 + sub_; }

  /// Fast-forward by n draws — O(1).
  constexpr void discard(std::uint64_t n) noexcept { set_index(index() + n); }

  constexpr std::uint32_t next_u32() noexcept {
    if (sub_ == 0) block_ = generate_block(counter_);
    const std::uint32_t out = block_[sub_];
    if (++sub_ == 4) {
      sub_ = 0;
      ++counter_;
    }
    return out;
  }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t hi = next_u32();
    return (hi << 32) | next_u32();
  }

  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// The i-th output of the stream as a pure function — does not disturb
  /// the generator's position.
  [[nodiscard]] constexpr std::uint32_t at(std::uint64_t i) const noexcept {
    return generate_block(i / 4)[i % 4];
  }

  friend constexpr bool operator==(const Philox4x32& a, const Philox4x32& b) noexcept {
    return a.key_ == b.key_ && a.index() == b.index();
  }

 private:
  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;

  static constexpr void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                                std::uint32_t& lo) noexcept {
    const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
    hi = static_cast<std::uint32_t>(p >> 32);
    lo = static_cast<std::uint32_t>(p);
  }

  [[nodiscard]] constexpr std::array<std::uint32_t, 4> generate_block(
      std::uint64_t counter) const noexcept {
    std::array<std::uint32_t, 4> x{static_cast<std::uint32_t>(counter),
                                   static_cast<std::uint32_t>(counter >> 32), 0u, 0u};
    std::uint32_t k0 = key_[0], k1 = key_[1];
    for (int round = 0; round < 10; ++round) {
      std::uint32_t hi0, lo0, hi1, lo1;
      mulhilo(kMul0, x[0], hi0, lo0);
      mulhilo(kMul1, x[2], hi1, lo1);
      x = {hi1 ^ x[1] ^ k0, lo1, hi0 ^ x[3] ^ k1, lo0};
      k0 += kWeyl0;
      k1 += kWeyl1;
    }
    return x;
  }

  std::array<std::uint32_t, 2> key_;
  std::uint64_t counter_ = 0;
  std::uint32_t sub_ = 0;
  std::array<std::uint32_t, 4> block_{};
};

}  // namespace peachy::rng
