#pragma once
/// \file context.hpp
/// \brief Execution context for the spark-like RDD engine.
///
/// Analogue of SparkContext: owns the worker pool, default partition
/// count, and the engine-wide telemetry (tasks run, shuffles performed,
/// records moved through shuffles) used by the pipeline benchmarks.

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace peachy::spark {

/// Engine-wide counters (telemetry for bench_pipeline / bench_spark).
struct EngineStats {
  std::uint64_t tasks = 0;             ///< partition-compute tasks executed
  std::uint64_t shuffles = 0;          ///< wide dependencies materialized
  std::uint64_t shuffle_records = 0;   ///< records hashed across a shuffle
};

/// Shared execution context.  Create one per application; RDDs keep a
/// shared_ptr so the context outlives every derived RDD.
class Context : public std::enable_shared_from_this<Context> {
 public:
  /// `threads` pool workers; `default_partitions` used when a source does
  /// not specify a partition count.
  static std::shared_ptr<Context> create(std::size_t threads = 4,
                                         std::size_t default_partitions = 4) {
    PEACHY_CHECK(default_partitions > 0, "context: need at least one partition");
    return std::shared_ptr<Context>(new Context{threads, default_partitions});
  }

  [[nodiscard]] support::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] std::size_t default_partitions() const noexcept { return default_partitions_; }

  [[nodiscard]] EngineStats stats() const noexcept {
    return {tasks_.load(std::memory_order_relaxed), shuffles_.load(std::memory_order_relaxed),
            shuffle_records_.load(std::memory_order_relaxed)};
  }
  void reset_stats() noexcept {
    tasks_.store(0, std::memory_order_relaxed);
    shuffles_.store(0, std::memory_order_relaxed);
    shuffle_records_.store(0, std::memory_order_relaxed);
  }

  // Telemetry hooks (called by the RDD machinery).
  void note_task() noexcept {
    tasks_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      static obs::Counter& c = obs::counter("spark.tasks");
      c.add(1);
    }
  }
  void note_shuffle(std::uint64_t records) noexcept {
    shuffles_.fetch_add(1, std::memory_order_relaxed);
    shuffle_records_.fetch_add(records, std::memory_order_relaxed);
    if (obs::enabled()) {
      static obs::Counter& c = obs::counter("spark.shuffles");
      static obs::Counter& r = obs::counter("spark.shuffle_records");
      c.add(1);
      r.add(static_cast<std::int64_t>(records));
    }
  }

 private:
  Context(std::size_t threads, std::size_t default_partitions)
      : pool_{threads}, default_partitions_{default_partitions} {}

  support::ThreadPool pool_;
  std::size_t default_partitions_;
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> shuffles_{0};
  std::atomic<std::uint64_t> shuffle_records_{0};
};

}  // namespace peachy::spark
