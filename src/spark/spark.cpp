// peachy::spark is header-only (templates); this anchor gives the static
// library a translation unit and validates the headers compile standalone.
#include "spark/pair_rdd.hpp"
#include "spark/rdd.hpp"

namespace peachy::spark {}
