#pragma once
/// \file pair_rdd.hpp
/// \brief Key-value operations on Rdd<std::pair<K,V>> (Spark's PairRDD).
///
/// These are the wide operations the pipeline assignment's workflows are
/// built from: reduce_by_key, group_by_key, join, count_by_key, plus the
/// narrow conveniences keys/values/map_values.  All wide ops co-partition
/// by `stable_hash(key)` so joins align buckets on both sides.

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "spark/rdd.hpp"

namespace peachy::spark {

/// Narrow: drop values.
template <typename K, typename V>
[[nodiscard]] Rdd<K> keys(const Rdd<std::pair<K, V>>& rdd) {
  return rdd.map([](const std::pair<K, V>& kv) { return kv.first; }, "keys");
}

/// Narrow: drop keys.
template <typename K, typename V>
[[nodiscard]] Rdd<V> values(const Rdd<std::pair<K, V>>& rdd) {
  return rdd.map([](const std::pair<K, V>& kv) { return kv.second; }, "values");
}

/// Narrow: transform values, keep keys.
template <typename K, typename V, typename F,
          typename U = std::invoke_result_t<F, const V&>>
[[nodiscard]] Rdd<std::pair<K, U>> map_values(const Rdd<std::pair<K, V>>& rdd, F f) {
  return rdd.map(
      [f](const std::pair<K, V>& kv) { return std::pair<K, U>{kv.first, f(kv.second)}; },
      "map_values");
}

namespace detail {

/// Shuffle a pair RDD into key-hashed buckets; shared by the wide pair ops.
template <typename K, typename V>
std::vector<std::vector<std::pair<K, V>>> shuffle_pairs(const Rdd<std::pair<K, V>>& rdd,
                                                        std::size_t nparts) {
  auto parts = materialize(rdd.node());
  std::uint64_t n = 0;
  for (const auto& p : parts) n += p.size();
  rdd.context()->note_shuffle(n);
  return hash_partition(std::move(parts), nparts,
                        [](const std::pair<K, V>& kv) { return kv.first; });
}

}  // namespace detail

/// Wide: fold all values of each key with an associative+commutative op.
/// Output has one record per distinct key, in deterministic (sorted key)
/// order within each partition.
template <typename K, typename V, typename Op>
[[nodiscard]] Rdd<std::pair<K, V>> reduce_by_key(const Rdd<std::pair<K, V>>& rdd, Op op,
                                                 std::size_t nparts = 0) {
  using KV = std::pair<K, V>;
  if (nparts == 0) nparts = rdd.partitions();
  auto ctx = rdd.context();
  auto state = std::make_shared<detail::ShuffleState<KV>>();
  auto source = rdd;  // copy keeps lineage alive inside the closure
  return Rdd<KV>::make(ctx, nparts, rdd.child_lineage("reduce_by_key (shuffle)"),
                       [source, nparts, state, op](std::size_t p) {
                         std::call_once(state->once, [&] {
                           auto buckets = detail::shuffle_pairs(source, nparts);
                           state->buckets.resize(nparts);
                           for (std::size_t b = 0; b < nparts; ++b) {
                             std::map<K, V> acc;
                             for (auto& kv : buckets[b]) {
                               auto [it, inserted] = acc.try_emplace(kv.first, kv.second);
                               if (!inserted) it->second = op(std::move(it->second),
                                                              std::move(kv.second));
                             }
                             for (auto& [k, v] : acc) {
                               state->buckets[b].emplace_back(k, std::move(v));
                             }
                           }
                         });
                         return state->buckets[p];
                       });
}

/// Wide: collect all values of each key into a vector (sorted key order
/// within each partition; value order follows partition order).
template <typename K, typename V>
[[nodiscard]] Rdd<std::pair<K, std::vector<V>>> group_by_key(const Rdd<std::pair<K, V>>& rdd,
                                                             std::size_t nparts = 0) {
  using KV = std::pair<K, V>;
  using KG = std::pair<K, std::vector<V>>;
  if (nparts == 0) nparts = rdd.partitions();
  auto ctx = rdd.context();
  auto state = std::make_shared<detail::ShuffleState<KG>>();
  auto source = rdd;
  return Rdd<KG>::make(ctx, nparts, rdd.child_lineage("group_by_key (shuffle)"),
                       [source, nparts, state](std::size_t p) {
                         std::call_once(state->once, [&] {
                           auto buckets = detail::shuffle_pairs(source, nparts);
                           state->buckets.resize(nparts);
                           for (std::size_t b = 0; b < nparts; ++b) {
                             std::map<K, std::vector<V>> groups;
                             for (KV& kv : buckets[b]) {
                               groups[kv.first].push_back(std::move(kv.second));
                             }
                             for (auto& [k, vs] : groups) {
                               state->buckets[b].emplace_back(k, std::move(vs));
                             }
                           }
                         });
                         return state->buckets[p];
                       });
}

/// Wide: inner join.  Output pairs every (v1, v2) whose keys match, in
/// deterministic (sorted key) order within each partition.
template <typename K, typename V1, typename V2>
[[nodiscard]] Rdd<std::pair<K, std::pair<V1, V2>>> join(const Rdd<std::pair<K, V1>>& left,
                                                        const Rdd<std::pair<K, V2>>& right,
                                                        std::size_t nparts = 0) {
  using Out = std::pair<K, std::pair<V1, V2>>;
  PEACHY_CHECK(left.context() == right.context(), "join: RDDs from different contexts");
  if (nparts == 0) nparts = std::max(left.partitions(), right.partitions());
  auto ctx = left.context();
  auto state = std::make_shared<detail::ShuffleState<Out>>();
  auto l = left;
  auto r = right;
  auto lin = left.child_lineage("join (shuffle)");
  return Rdd<Out>::make(
      ctx, nparts, std::move(lin), [l, r, nparts, state](std::size_t p) {
        std::call_once(state->once, [&] {
          auto lbuckets = detail::shuffle_pairs(l, nparts);
          auto rbuckets = detail::shuffle_pairs(r, nparts);
          state->buckets.resize(nparts);
          for (std::size_t b = 0; b < nparts; ++b) {
            std::map<K, std::vector<V2>> rindex;
            for (auto& kv : rbuckets[b]) rindex[kv.first].push_back(std::move(kv.second));
            std::map<K, std::vector<std::pair<V1, V2>>> matched;
            for (auto& kv : lbuckets[b]) {
              const auto it = rindex.find(kv.first);
              if (it == rindex.end()) continue;
              for (const V2& v2 : it->second) matched[kv.first].emplace_back(kv.second, v2);
            }
            for (auto& [k, pairs] : matched) {
              for (auto& pr : pairs) state->buckets[b].emplace_back(k, std::move(pr));
            }
          }
        });
        return state->buckets[p];
      });
}

/// Action: count records per key (exact, returned on the driver).
template <typename K, typename V>
[[nodiscard]] std::map<K, std::size_t> count_by_key(const Rdd<std::pair<K, V>>& rdd) {
  std::map<K, std::size_t> counts;
  for (const auto& kv : rdd.collect()) ++counts[kv.first];
  return counts;
}

}  // namespace peachy::spark
