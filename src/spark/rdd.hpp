#pragma once
/// \file rdd.hpp
/// \brief Lazy, lineage-tracked, partitioned datasets (the Spark model).
///
/// The pipeline assignment (paper §4) teaches "designing, constructing,
/// and improving true data analysis pipelines" on Spark.  This engine
/// reproduces Spark's programming model in C++:
///
///  * an `Rdd<T>` is an immutable, partitioned dataset defined by its
///    *lineage* (how to compute each partition from its parents), not by
///    stored data;
///  * *narrow* transformations (`map`, `filter`, `flat_map`, `sample`,
///    `union_with`, `zip_with_index`) compose per-partition and stay lazy;
///  * *wide* transformations (`reduce_by_key`, `group_by_key`, `join`,
///    `distinct`, `sort_by`, `repartition`) introduce a shuffle boundary:
///    all parent partitions are materialized, records are hash- (or
///    range-) partitioned, and a new stage begins — exactly Spark's stage
///    split;
///  * *actions* (`collect`, `count`, `reduce`, `take`, `count_by_key`)
///    trigger execution; partitions are evaluated in parallel on the
///    context's pool.
///
/// `lineage()` renders the DAG chain for teaching ("toDebugString").

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/hooks.hpp"
#include "obs/obs.hpp"
#include "rng/splitmix.hpp"
#include "spark/context.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"
#include "support/parallel_for.hpp"

namespace peachy::spark {

namespace detail {

/// Type-erased-free node: each Rdd<T> owns a Node<T> with a compute
/// closure over its parents' nodes (captured inside the closure via
/// shared_ptr, keeping the whole lineage alive).
template <typename T>
struct Node {
  std::shared_ptr<Context> ctx;
  std::size_t nparts = 0;
  std::function<std::vector<T>(std::size_t part)> compute;
  std::vector<std::string> lineage;  // root-first chain of op descriptions

  // Optional memoization (enabled by Rdd::cache()).
  bool cache_enabled = false;
  std::mutex cache_mu;
  std::optional<std::vector<std::vector<T>>> cached;
};

/// Evaluate every partition of a node in parallel; respects the cache.
template <typename T>
std::vector<std::vector<T>> materialize(const std::shared_ptr<Node<T>>& node) {
  if (node->cache_enabled) {
    std::lock_guard lock{node->cache_mu};
    if (node->cached) return *node->cached;
  }
  const obs::SpanScope span{"spark", "stage", "parts",
                            static_cast<std::int64_t>(node->nparts)};
  std::vector<std::vector<T>> parts(node->nparts);
  // Grain 0: a partition is arbitrary user work — always dispatch tasks,
  // even for RDDs with a handful of partitions.
  support::parallel_for(
      node->ctx->pool(), 0, node->nparts,
      [&](std::size_t p) {
        // Re-publish the task identity as the *partition* id (parallel_for's
        // blocks may cover several partitions) so user closures racing across
        // partitions are attributed correctly by the analysis layer.
        const analysis::TaskScope scope{p, analysis::current_task().epoch};
        node->ctx->note_task();
        parts[p] = node->compute(p);
      },
      /*grain=*/0);
  if (node->cache_enabled) {
    std::lock_guard lock{node->cache_mu};
    node->cached = parts;
  }
  return parts;
}

/// Hash-partition a materialized dataset's records by key into nparts
/// buckets.  KeyFn maps a record to its partition key.  Two passes: the
/// first sizes every bucket (hashing each key once, destinations kept in
/// a flat index vector), the second moves records into exactly-reserved
/// storage — wide shuffles were dominated by the push_back reallocation
/// churn of the single-pass version.
template <typename T, typename KeyFn>
std::vector<std::vector<T>> hash_partition(std::vector<std::vector<T>>&& parts,
                                           std::size_t nparts, KeyFn&& keyfn) {
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<std::uint32_t> dest;
  dest.reserve(total);
  std::vector<std::size_t> counts(nparts, 0);
  for (const auto& part : parts) {
    for (const auto& rec : part) {
      const std::size_t b =
          static_cast<std::size_t>(support::stable_hash(keyfn(rec)) % nparts);
      dest.push_back(static_cast<std::uint32_t>(b));
      ++counts[b];
    }
  }
  std::vector<std::vector<T>> buckets(nparts);
  for (std::size_t b = 0; b < nparts; ++b) buckets[b].reserve(counts[b]);
  std::size_t i = 0;
  for (auto& part : parts) {
    for (auto& rec : part) buckets[dest[i++]].push_back(std::move(rec));
  }
  return buckets;
}

/// A shuffle stage: materializes `producer()` once (thread-safe), then
/// serves per-partition buckets.
template <typename T>
struct ShuffleState {
  std::once_flag once;
  std::vector<std::vector<T>> buckets;
};

}  // namespace detail

template <typename T>
class Rdd;

/// Create an RDD from in-memory data split into `nparts` near-even blocks
/// (Spark's `parallelize`).
template <typename T>
Rdd<T> parallelize(std::shared_ptr<Context> ctx, std::vector<T> data, std::size_t nparts = 0);

/// An immutable, lazy, partitioned dataset.
template <typename T>
class Rdd {
 public:
  using value_type = T;

  [[nodiscard]] std::size_t partitions() const noexcept { return node_->nparts; }
  [[nodiscard]] std::shared_ptr<Context> context() const noexcept { return node_->ctx; }

  /// Human-readable lineage chain, root first (Spark's toDebugString).
  [[nodiscard]] std::string lineage() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < node_->lineage.size(); ++i) {
      os << std::string(i * 2, ' ') << node_->lineage[i] << '\n';
    }
    return os.str();
  }

  /// Memoize partitions on first evaluation (Spark's cache/persist).
  Rdd<T>& cache() {
    node_->cache_enabled = true;
    return *this;
  }

  // ---- narrow transformations (lazy, per-partition) -----------------------

  /// Element-wise transform.
  template <typename F, typename U = std::invoke_result_t<F, const T&>>
  [[nodiscard]] Rdd<U> map(F f, const std::string& label = "map") const {
    auto parent = node_;
    return Rdd<U>::make(node_->ctx, node_->nparts, child_lineage(label),
                        [parent, f](std::size_t p) {
                          const std::vector<T> in = parent->compute(p);
                          std::vector<U> out;
                          out.reserve(in.size());
                          for (const T& x : in) out.push_back(f(x));
                          return out;
                        });
  }

  /// Keep elements where pred(x) is true.
  template <typename F>
  [[nodiscard]] Rdd<T> filter(F pred, const std::string& label = "filter") const {
    auto parent = node_;
    return Rdd<T>::make(node_->ctx, node_->nparts, child_lineage(label),
                        [parent, pred](std::size_t p) {
                          std::vector<T> out;
                          for (T& x : parent->compute(p)) {
                            if (pred(std::as_const(x))) out.push_back(std::move(x));
                          }
                          return out;
                        });
  }

  /// Expand each element into zero or more outputs.
  template <typename F, typename C = std::invoke_result_t<F, const T&>,
            typename U = typename C::value_type>
  [[nodiscard]] Rdd<U> flat_map(F f, const std::string& label = "flat_map") const {
    auto parent = node_;
    return Rdd<U>::make(node_->ctx, node_->nparts, child_lineage(label),
                        [parent, f](std::size_t p) {
                          std::vector<U> out;
                          for (const T& x : parent->compute(p)) {
                            for (auto& y : f(x)) out.push_back(std::move(y));
                          }
                          return out;
                        });
  }

  /// Bernoulli sample of each partition (deterministic per partition).
  [[nodiscard]] Rdd<T> sample(double fraction, std::uint64_t seed) const {
    PEACHY_CHECK(fraction >= 0.0 && fraction <= 1.0, "sample: fraction outside [0,1]");
    auto parent = node_;
    return Rdd<T>::make(node_->ctx, node_->nparts, child_lineage("sample"),
                        [parent, fraction, seed](std::size_t p) {
                          rng::SplitMix64 gen{rng::derive_seed(seed, p)};
                          std::vector<T> out;
                          for (T& x : parent->compute(p)) {
                            if (gen.next_double() < fraction) out.push_back(std::move(x));
                          }
                          return out;
                        });
  }

  /// Concatenate two RDDs (their partitions are appended).
  [[nodiscard]] Rdd<T> union_with(const Rdd<T>& other) const {
    auto a = node_;
    auto b = other.node_;
    PEACHY_CHECK(a->ctx == b->ctx, "union: RDDs from different contexts");
    auto lin = child_lineage("union");
    return Rdd<T>::make(node_->ctx, a->nparts + b->nparts, std::move(lin),
                        [a, b](std::size_t p) {
                          return p < a->nparts ? a->compute(p) : b->compute(p - a->nparts);
                        });
  }

  // ---- wide transformations (shuffle boundary) ------------------------------

  /// Redistribute records into `nparts` hash partitions.
  [[nodiscard]] Rdd<T> repartition(std::size_t nparts) const {
    PEACHY_CHECK(nparts > 0, "repartition: need at least one partition");
    return shuffle_by(nparts, [](const T& x) { return support::stable_hash(x); },
                      "repartition");
  }

  /// Remove duplicates (requires operator== and stable_hash support).
  [[nodiscard]] Rdd<T> distinct() const {
    auto shuffled = shuffle_by(node_->nparts, [](const T& x) { return support::stable_hash(x); },
                               "distinct");
    auto parent = shuffled.node_;
    return Rdd<T>::make(node_->ctx, parent->nparts, shuffled.node_->lineage,
                        [parent](std::size_t p) {
                          std::vector<T> in = parent->compute(p);
                          std::sort(in.begin(), in.end());
                          in.erase(std::unique(in.begin(), in.end()), in.end());
                          return in;
                        });
  }

  /// Globally sort by key(x) ascending; output keeps the partition count
  /// (range-partitioned, so concatenating partitions yields sorted order).
  template <typename KeyFn>
  [[nodiscard]] Rdd<T> sort_by(KeyFn key, bool desc = false) const {
    auto parent = node_;
    auto ctx = node_->ctx;
    const std::size_t nparts = node_->nparts;
    auto state = std::make_shared<detail::ShuffleState<T>>();
    return Rdd<T>::make(
        ctx, nparts, child_lineage(desc ? "sort_by desc (shuffle)" : "sort_by (shuffle)"),
        [parent, ctx, nparts, state, key, desc](std::size_t p) {
          std::call_once(state->once, [&] {
            obs::SpanScope span{"spark", "shuffle"};
            auto parts = detail::materialize(parent);
            std::vector<T> all;
            std::uint64_t n = 0;
            for (auto& part : parts) {
              n += part.size();
              all.insert(all.end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
            }
            std::stable_sort(all.begin(), all.end(), [&](const T& a, const T& b) {
              return desc ? key(b) < key(a) : key(a) < key(b);
            });
            ctx->note_shuffle(n);
            span.arg("records", static_cast<std::int64_t>(n));
            // Range partition: contiguous sorted slices.
            state->buckets.resize(nparts);
            for (std::size_t t = 0; t < nparts; ++t) {
              const auto blk = support::static_block(all.size(), nparts, t);
              state->buckets[t].assign(std::make_move_iterator(all.begin() + blk.begin),
                                       std::make_move_iterator(all.begin() + blk.end));
            }
          });
          return state->buckets[p];
        });
  }

  // ---- actions (trigger execution) -------------------------------------------

  /// All records, partition order preserved.
  [[nodiscard]] std::vector<T> collect() const {
    auto parts = detail::materialize(node_);
    std::vector<T> out;
    for (auto& p : parts) {
      out.insert(out.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
    }
    return out;
  }

  /// Number of records.
  [[nodiscard]] std::size_t count() const {
    auto parts = detail::materialize(node_);
    std::size_t n = 0;
    for (const auto& p : parts) n += p.size();
    return n;
  }

  /// Fold all records with an associative+commutative op.  Throws on an
  /// empty dataset (as Spark does).
  template <typename Op>
  [[nodiscard]] T reduce(Op op) const {
    auto parts = detail::materialize(node_);
    std::optional<T> acc;
    for (auto& p : parts) {
      for (auto& x : p) {
        if (acc) {
          acc = op(std::move(*acc), std::move(x));
        } else {
          acc = std::move(x);
        }
      }
    }
    PEACHY_CHECK(acc.has_value(), "reduce of empty RDD");
    return std::move(*acc);
  }

  /// First n records in partition order.
  [[nodiscard]] std::vector<T> take(std::size_t n) const {
    auto all = collect();  // teaching engine: no incremental evaluation
    if (all.size() > n) all.resize(n);
    return all;
  }

  // ---- plumbing ---------------------------------------------------------------

  /// Construct from raw parts (used by the factory functions and pair ops).
  static Rdd<T> make(std::shared_ptr<Context> ctx, std::size_t nparts,
                     std::vector<std::string> lineage,
                     std::function<std::vector<T>(std::size_t)> compute) {
    PEACHY_CHECK(nparts > 0, "rdd: need at least one partition");
    auto node = std::make_shared<detail::Node<T>>();
    node->ctx = std::move(ctx);
    node->nparts = nparts;
    node->compute = std::move(compute);
    node->lineage = std::move(lineage);
    return Rdd<T>{std::move(node)};
  }

  [[nodiscard]] std::vector<std::string> child_lineage(const std::string& label) const {
    auto lin = node_->lineage;
    lin.push_back(label);
    return lin;
  }

  [[nodiscard]] const std::shared_ptr<detail::Node<T>>& node() const noexcept { return node_; }

 private:
  template <typename KeyHashFn>
  [[nodiscard]] Rdd<T> shuffle_by(std::size_t nparts, KeyHashFn hashfn,
                                  const std::string& label) const {
    auto parent = node_;
    auto ctx = node_->ctx;
    auto state = std::make_shared<detail::ShuffleState<T>>();
    return Rdd<T>::make(ctx, nparts, child_lineage(label + " (shuffle)"),
                        [parent, ctx, nparts, state, hashfn](std::size_t p) {
                          std::call_once(state->once, [&] {
                            obs::SpanScope span{"spark", "shuffle"};
                            auto parts = detail::materialize(parent);
                            std::uint64_t n = 0;
                            for (const auto& part : parts) n += part.size();
                            ctx->note_shuffle(n);
                            span.arg("records", static_cast<std::int64_t>(n));
                            state->buckets.resize(nparts);
                            for (auto& part : parts) {
                              for (auto& rec : part) {
                                const auto b = static_cast<std::size_t>(hashfn(rec) % nparts);
                                state->buckets[b].push_back(std::move(rec));
                              }
                            }
                          });
                          return state->buckets[p];
                        });
  }

  explicit Rdd(std::shared_ptr<detail::Node<T>> node) : node_{std::move(node)} {}

  template <typename U>
  friend class Rdd;

  std::shared_ptr<detail::Node<T>> node_;
};

template <typename T>
Rdd<T> parallelize(std::shared_ptr<Context> ctx, std::vector<T> data, std::size_t nparts) {
  PEACHY_CHECK(ctx != nullptr, "parallelize: null context");
  if (nparts == 0) nparts = ctx->default_partitions();
  auto shared = std::make_shared<std::vector<T>>(std::move(data));
  std::ostringstream label;
  label << "parallelize[" << shared->size() << " records, " << nparts << " partitions]";
  return Rdd<T>::make(ctx, nparts, {label.str()}, [shared, nparts](std::size_t p) {
    const auto blk = support::static_block(shared->size(), nparts, p);
    return std::vector<T>(shared->begin() + blk.begin, shared->begin() + blk.end);
  });
}

}  // namespace peachy::spark
