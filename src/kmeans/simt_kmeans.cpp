#include "kmeans/simt_kmeans.hpp"

#include <algorithm>
#include <atomic>

#include "kernels/kernels.hpp"
#include "kmeans/detail.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"

namespace peachy::kmeans {

Result cluster_simt(const data::PointSet& points, const Options& opts, const SimtConfig& cfg,
                    support::ThreadPool& pool, SimtStats* stats) {
  detail::validate(points, opts);
  PEACHY_CHECK(cfg.block_size >= 1, "simt: block size must be positive");
  const std::size_t n = points.size();
  const std::size_t d = points.dims();
  const std::size_t k = opts.k;
  const std::size_t nblocks = (n + cfg.block_size - 1) / cfg.block_size;

  Result res;
  res.centroids = initial_centroids(points, opts);
  res.assignment.assign(n, -1);

  std::atomic<std::uint64_t> atomic_updates{0};
  std::size_t blocks_launched = 0;

  std::vector<double> sums(k * d);
  std::vector<std::int64_t> counts(k);

  for (res.iterations = 1; res.iterations <= opts.max_iterations; ++res.iterations) {
    // Global device buffers for this iteration.
    std::vector<std::atomic<double>> g_sums(k * d);
    std::vector<std::atomic<std::int64_t>> g_counts(k);
    std::atomic<std::size_t> g_changes{0};

    // One read-only centroid panel per iteration, shared by all blocks.
    const auto panel = res.centroids.transposed_panel();

    // Kernel launch: one pool task per block; lanes are loop iterations.
    support::parallel_for(pool, 0, nblocks, [&](std::size_t block) {
      const std::size_t lo = block * cfg.block_size;
      const std::size_t hi = std::min(n, lo + cfg.block_size);

      if (cfg.reduce == SimtReduce::kGlobalAtomic) {
        for (std::size_t i = lo; i < hi; ++i) {  // each lane: one point
          const auto c = static_cast<std::int32_t>(kernels::argmin_batch(
              points.point(i).data(), d, panel.data(), k, panel.padded));
          if (c != res.assignment[i]) g_changes.fetch_add(1, std::memory_order_relaxed);
          res.assignment[i] = c;
          g_counts[static_cast<std::size_t>(c)].fetch_add(1, std::memory_order_relaxed);
          const auto p = points.point(i);
          for (std::size_t j = 0; j < d; ++j) {
            g_sums[static_cast<std::size_t>(c) * d + j].fetch_add(p[j],
                                                                  std::memory_order_relaxed);
          }
          atomic_updates.fetch_add(d + 1, std::memory_order_relaxed);
        }
      } else {
        // Block-shared scratch ("__shared__"): the fused kernel runs the
        // whole block into it, then one representative lane merges.
        std::vector<double> s_sums(k * d, 0.0);
        std::vector<std::int64_t> s_counts(k, 0);
        const std::size_t s_changes = kernels::argmin_assign(
            points.values().data() + lo * d, hi - lo, d, panel.data(), k, panel.padded,
            res.assignment.data() + lo, s_sums.data(), s_counts.data());
        // One representative lane merges the block partials globally.
        std::uint64_t merges = 0;
        for (std::size_t i = 0; i < k * d; ++i) {
          if (s_sums[i] != 0.0) {
            g_sums[i].fetch_add(s_sums[i], std::memory_order_relaxed);
            ++merges;
          }
        }
        for (std::size_t c = 0; c < k; ++c) {
          if (s_counts[c] != 0) {
            g_counts[c].fetch_add(s_counts[c], std::memory_order_relaxed);
            ++merges;
          }
        }
        g_changes.fetch_add(s_changes, std::memory_order_relaxed);
        atomic_updates.fetch_add(merges + 1, std::memory_order_relaxed);
      }
    });
    blocks_launched += nblocks;

    const std::size_t changes = g_changes.load();
    for (std::size_t i = 0; i < k * d; ++i) sums[i] = g_sums[i].load();
    for (std::size_t c = 0; c < k; ++c) counts[c] = g_counts[c].load();

    res.changes_per_iteration.push_back(changes);
    const double max_move = detail::recompute_centroids(res.centroids, sums, counts);

    if (changes <= opts.min_changes) {
      res.termination = Termination::kMinChanges;
      break;
    }
    if (max_move <= opts.move_tolerance) {
      res.termination = Termination::kCentroidsConverged;
      break;
    }
    if (res.iterations == opts.max_iterations) {
      res.termination = Termination::kMaxIterations;
      break;
    }
  }
  res.iterations = std::min(res.iterations, opts.max_iterations);
  res.inertia = inertia(points, res.centroids, res.assignment);

  if (stats != nullptr) {
    stats->global_atomic_updates = atomic_updates.load();
    stats->blocks_launched = blocks_launched;
  }
  return res;
}

}  // namespace peachy::kmeans
