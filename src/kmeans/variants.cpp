/// \file variants.cpp
/// \brief The OpenMP-strategy stages of the k-means assignment (paper §3).
///
/// The four stages the students walk through — critical regions, atomic
/// operations, reductions, and cache-aware reductions — implemented as
/// selectable variants over the shared thread pool.  Each iteration's
/// parallel region mirrors `#pragma omp parallel for` with a static
/// schedule over the points.

#include <atomic>
#include <mutex>

#include "kernels/kernels.hpp"
#include "kmeans/detail.hpp"
#include "kmeans/kmeans.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"

namespace peachy::kmeans {

namespace {

/// Cache-line padded accumulator block for the kReductionPadded variant.
struct alignas(64) PaddedCounter {
  std::size_t value = 0;
};

}  // namespace

Result cluster_parallel(const data::PointSet& points, const Options& opts, Variant variant,
                        support::ThreadPool& pool, std::size_t threads) {
  detail::validate(points, opts);
  PEACHY_CHECK(threads >= 1, "kmeans: threads must be at least 1");
  const std::size_t n = points.size();
  const std::size_t d = points.dims();
  const std::size_t k = opts.k;

  Result res;
  res.centroids = initial_centroids(points, opts);
  res.assignment.assign(n, -1);

  // Shared accumulators for the critical/atomic stages.
  std::vector<double> sums(k * d);
  std::vector<std::int64_t> counts(k);

  for (res.iterations = 1; res.iterations <= opts.max_iterations; ++res.iterations) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    std::size_t changes = 0;

    // One centroid panel per iteration, shared read-only by all threads
    // — the same kernel every other k-means implementation uses, so
    // assignments agree bit-for-bit across variants.
    const auto panel = res.centroids.transposed_panel();

    switch (variant) {
      case Variant::kCritical: {
        // Stage 2: every shared update inside one critical region.  The
        // distance computation stays outside (or nothing would scale).
        std::mutex critical;
        support::parallel_for_threads(
            pool, n, threads, [&](std::size_t, std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i) {
                const auto c = static_cast<std::int32_t>(kernels::argmin_batch(
                    points.point(i).data(), d, panel.data(), k, panel.padded));
                const auto p = points.point(i);
                std::lock_guard guard{critical};
                if (c != res.assignment[i]) ++changes;
                res.assignment[i] = c;
                ++counts[static_cast<std::size_t>(c)];
                for (std::size_t j = 0; j < d; ++j) {
                  sums[static_cast<std::size_t>(c) * d + j] += p[j];
                }
              }
            });
        break;
      }

      case Variant::kAtomic: {
        // Stage 3: atomic fetch-adds replace the critical region.  Each
        // point's writes are independent; assignment[i] is only written by
        // the owner of i, so only the accumulators need atomics.
        std::atomic<std::size_t> a_changes{0};
        std::vector<std::atomic<double>> a_sums(k * d);
        std::vector<std::atomic<std::int64_t>> a_counts(k);
        support::parallel_for_threads(
            pool, n, threads, [&](std::size_t, std::size_t lo, std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i) {
                const auto c = static_cast<std::int32_t>(kernels::argmin_batch(
                    points.point(i).data(), d, panel.data(), k, panel.padded));
                if (c != res.assignment[i]) a_changes.fetch_add(1, std::memory_order_relaxed);
                res.assignment[i] = c;
                a_counts[static_cast<std::size_t>(c)].fetch_add(1, std::memory_order_relaxed);
                const auto p = points.point(i);
                for (std::size_t j = 0; j < d; ++j) {
                  a_sums[static_cast<std::size_t>(c) * d + j].fetch_add(
                      p[j], std::memory_order_relaxed);
                }
              }
            });
        changes = a_changes.load();
        for (std::size_t i = 0; i < k * d; ++i) sums[i] = a_sums[i].load();
        for (std::size_t c = 0; c < k; ++c) counts[c] = a_counts[c].load();
        break;
      }

      case Variant::kReduction:
      case Variant::kReductionPadded: {
        // Stage 4: per-thread private accumulators, merged in thread
        // order — no synchronization in the hot loop, deterministic sums.
        const bool padded = variant == Variant::kReductionPadded;
        // Padded layout rounds each thread's buffer up to whole cache
        // lines so threads never write the same line (false sharing).
        const std::size_t stride =
            padded ? ((k * d + 7) / 8) * 8 : k * d;  // 8 doubles = 64 bytes
        std::vector<double> t_sums(threads * stride, 0.0);
        std::vector<std::int64_t> t_counts(threads * k, 0);
        std::vector<PaddedCounter> t_changes(threads);
        support::parallel_for_threads(
            pool, n, threads, [&](std::size_t t, std::size_t lo, std::size_t hi) {
              // The fused kernel runs the whole block: assignment writes
              // land in this thread's slice of res.assignment, sums and
              // counts in its private accumulators (point order, then
              // dimension order — the sequential reference order, so the
              // thread-ordered merge below is deterministic).
              t_changes[t].value = kernels::argmin_assign(
                  points.values().data() + lo * d, hi - lo, d, panel.data(), k, panel.padded,
                  res.assignment.data() + lo, t_sums.data() + t * stride,
                  t_counts.data() + t * k);
            });
        for (std::size_t t = 0; t < threads; ++t) {
          changes += t_changes[t].value;
          for (std::size_t i = 0; i < k * d; ++i) sums[i] += t_sums[t * stride + i];
          for (std::size_t c = 0; c < k; ++c) counts[c] += t_counts[t * k + c];
        }
        break;
      }
    }

    res.changes_per_iteration.push_back(changes);
    const double max_move = detail::recompute_centroids(res.centroids, sums, counts);

    if (changes <= opts.min_changes) {
      res.termination = Termination::kMinChanges;
      break;
    }
    if (max_move <= opts.move_tolerance) {
      res.termination = Termination::kCentroidsConverged;
      break;
    }
    if (res.iterations == opts.max_iterations) {
      res.termination = Termination::kMaxIterations;
      break;
    }
  }
  res.iterations = std::min(res.iterations, opts.max_iterations);
  res.inertia = inertia(points, res.centroids, res.assignment);
  return res;
}

}  // namespace peachy::kmeans
