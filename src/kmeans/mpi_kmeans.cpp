#include "kmeans/mpi_kmeans.hpp"

#include <algorithm>

#include "kernels/kernels.hpp"
#include "kmeans/detail.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace peachy::kmeans {

Result cluster_mpi(mpi::Comm& comm, const data::PointSet& points, const Options& opts,
                   MpiKmeansStats* stats, const faults::FtOptions& ft) {
  const int root = 0;

  // Broadcast problem shape, then scatter point blocks.
  struct Shape {
    std::uint64_t n, d;
  };
  Shape shape{points.size(), points.dims()};
  shape = comm.broadcast_value(shape, root);
  if (comm.rank() == root) {
    detail::validate(points, opts);
    PEACHY_CHECK(points.size() == shape.n, "cluster_mpi: root dataset changed during setup");
  }

  // Scatter raw coordinates in whole-point blocks.  scatter_blocks splits
  // a flat array evenly, which could cut a point in half — so scatter an
  // index-block-aligned payload instead: compute this rank's point range
  // and receive exactly those rows.
  const auto my_block = support::static_block(
      shape.n, static_cast<std::size_t>(comm.size()), static_cast<std::size_t>(comm.rank()));
  std::vector<double> my_values;
  {
    const int tag = 1001;
    if (comm.rank() == root) {
      for (int r = 0; r < comm.size(); ++r) {
        const auto blk = support::static_block(shape.n, static_cast<std::size_t>(comm.size()),
                                               static_cast<std::size_t>(r));
        std::span<const double> rows{points.values().data() + blk.begin * shape.d,
                                     (blk.end - blk.begin) * shape.d};
        if (r == root) {
          my_values.assign(rows.begin(), rows.end());
        } else {
          comm.send<double>(r, tag, rows);
        }
      }
    } else {
      my_values = comm.recv<double>(root, tag);
    }
  }
  const data::PointSet my_points{my_block.end - my_block.begin, shape.d, std::move(my_values)};

  // Identical initial centroids everywhere: root computes, broadcasts.
  // (Copied out of the aligned backing store: the wire format is a plain
  // std::vector.)
  std::vector<double> centroid_values;
  if (comm.rank() == root) {
    const data::PointSet init = initial_centroids(points, opts);
    centroid_values.assign(init.values().begin(), init.values().end());
  }
  comm.broadcast(centroid_values, root);
  data::PointSet centroids{opts.k, shape.d, std::move(centroid_values)};

  Result res;
  res.assignment.assign(my_points.size(), -1);
  const std::size_t k = opts.k;
  const std::size_t d = shape.d;

  // Restart: replace the broadcast initial centroids and the virgin (-1)
  // assignment with the snapshot's, so the first resumed iteration counts
  // `changes` against the pre-crash assignment exactly as an uninterrupted
  // run would.
  std::size_t first_iter = 1;
  if (ft.active()) {
    if (const auto snap = ft.store->load(ft.key)) {
      faults::BlobReader r{snap->blob};
      auto cvals = r.get_vec<double>();
      PEACHY_CHECK(cvals.size() == k * d, "kmeans restart: snapshot centroid shape mismatch");
      centroids = data::PointSet{k, d, std::move(cvals)};
      res.changes_per_iteration = r.get_vec<std::size_t>();
      const auto full_assign = r.get_vec<std::int32_t>();
      PEACHY_CHECK(full_assign.size() == shape.n, "kmeans restart: snapshot point count mismatch");
      std::copy(full_assign.begin() + static_cast<std::ptrdiff_t>(my_block.begin),
                full_assign.begin() + static_cast<std::ptrdiff_t>(my_block.end),
                res.assignment.begin());
      first_iter = static_cast<std::size_t>(snap->next_step);
      if (obs::enabled()) obs::counter("faults.restores").add(1);
    }
  }

  for (res.iterations = first_iter; res.iterations <= opts.max_iterations; ++res.iterations) {
    // Local phase: one fused-kernel pass over this rank's block — the
    // same kernel the shared-memory variants run, so assignments agree
    // bit-for-bit with them.
    std::vector<double> sums(k * d, 0.0);
    std::vector<std::int64_t> counts(k, 0);
    const auto panel = centroids.transposed_panel();
    auto changes = static_cast<std::uint64_t>(kernels::argmin_assign(
        my_points.values().data(), my_points.size(), d, panel.data(), k, panel.padded,
        res.assignment.data(), sums.data(), counts.data()));

    // The distributed reduction the assignment is about — in place, so
    // the per-iteration loop allocates nothing for transport.
    comm.allreduce_inplace<double>(std::span<double>{sums}, std::plus<>{});
    comm.allreduce_inplace<std::int64_t>(std::span<std::int64_t>{counts}, std::plus<>{});
    changes = comm.allreduce_value<std::uint64_t>(changes, std::plus<>{});

    res.changes_per_iteration.push_back(static_cast<std::size_t>(changes));
    const double max_move = detail::recompute_centroids(centroids, sums, counts);

    // Iteration-boundary checkpoint.  The assignment is distributed, so
    // the snapshot costs one extra allgather per checkpoint (that cost is
    // what T-FLT-1 measures); every rank participates in the collective,
    // rank 0 alone writes the blob.
    if (ft.active() && res.iterations % static_cast<std::size_t>(ft.every) == 0) {
      std::vector<std::int32_t> full_assign(shape.n);
      comm.allgather_into<std::int32_t>(res.assignment, std::span<std::int32_t>{full_assign});
      if (comm.rank() == 0) {
        faults::BlobWriter w;
        w.put_span(centroids.values().data(), k * d);
        w.put_vec(res.changes_per_iteration);
        w.put_vec(full_assign);
        ft.store->save(ft.key, faults::Snapshot{res.iterations + 1, std::move(w).take()});
        if (obs::enabled()) obs::counter("faults.checkpoints").add(1);
      }
    }

    if (changes <= opts.min_changes) {
      res.termination = Termination::kMinChanges;
      break;
    }
    if (max_move <= opts.move_tolerance) {
      res.termination = Termination::kCentroidsConverged;
      break;
    }
    if (res.iterations == opts.max_iterations) {
      res.termination = Termination::kMaxIterations;
      break;
    }
  }
  res.iterations = std::min(res.iterations, opts.max_iterations);

  // Collect the distributed results: assignments in rank order equal the
  // original point order because the blocks are contiguous (static_block
  // is exactly the layout allgather_into expects), so the ring exchange
  // can land every block straight into the full-size result.
  std::vector<std::int32_t> all_assign(shape.n);
  comm.allgather_into<std::int32_t>(res.assignment, std::span<std::int32_t>{all_assign});
  res.assignment = std::move(all_assign);
  res.centroids = std::move(centroids);

  // Inertia via one more distributed reduction.
  double local_inertia = 0.0;
  for (std::size_t i = 0; i < my_points.size(); ++i) {
    local_inertia += res.centroids.squared_distance(
        static_cast<std::size_t>(res.assignment[my_block.begin + i]), my_points.point(i));
  }
  res.inertia = comm.allreduce_value(local_inertia, std::plus<>{});

  if (stats != nullptr) {
    stats->messages = comm.traffic().messages;
    stats->bytes = comm.traffic().bytes;
    stats->iterations = res.iterations;
  }
  return res;
}

}  // namespace peachy::kmeans
