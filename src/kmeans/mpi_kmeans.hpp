#pragma once
/// \file mpi_kmeans.hpp
/// \brief Distributed k-means over mini-MPI (paper §3's second model).
///
/// "In MPI, the data structures should be distributed.  The initial data
/// and results can be communicated with collective communication
/// operations ... a distributed reduction is needed in any case."
///
/// Root scatters the points in static blocks; every rank holds the (small)
/// centroid array.  Each iteration computes local sums/counts/changes and
/// allreduces them — the distributed analogue of the OpenMP reduction
/// stage.  Assignments are gathered back to root at the end and broadcast.

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"
#include "mpi/mpi.hpp"

namespace peachy::kmeans {

/// Telemetry for the collective-communication experiment (T-KM-2).
struct MpiKmeansStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::size_t iterations = 0;
};

/// Cluster `points` (significant at root only; other ranks may pass an
/// empty set) across the communicator.  Every rank returns the full
/// Result.  With 1 rank this is exactly the sequential algorithm.
///
/// `stats`, if non-null, is filled by the calling rank — pass a
/// rank-local object, never one shared across rank lambdas (data race).
[[nodiscard]] Result cluster_mpi(mpi::Comm& comm, const data::PointSet& points,
                                 const Options& opts, MpiKmeansStats* stats = nullptr);

}  // namespace peachy::kmeans
