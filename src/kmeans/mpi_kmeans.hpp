#pragma once
/// \file mpi_kmeans.hpp
/// \brief Distributed k-means over mini-MPI (paper §3's second model).
///
/// "In MPI, the data structures should be distributed.  The initial data
/// and results can be communicated with collective communication
/// operations ... a distributed reduction is needed in any case."
///
/// Root scatters the points in static blocks; every rank holds the (small)
/// centroid array.  Each iteration computes local sums/counts/changes and
/// allreduces them — the distributed analogue of the OpenMP reduction
/// stage.  Assignments are gathered back to root at the end and broadcast.

#include "data/points.hpp"
#include "faults/checkpoint.hpp"
#include "kmeans/kmeans.hpp"
#include "mpi/mpi.hpp"

namespace peachy::kmeans {

/// Telemetry for the collective-communication experiment (T-KM-2).
struct MpiKmeansStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::size_t iterations = 0;
};

/// Cluster `points` (significant at root only; other ranks may pass an
/// empty set) across the communicator.  Every rank returns the full
/// Result.  With 1 rank this is exactly the sequential algorithm.
///
/// `stats`, if non-null, is filled by the calling rank — pass a
/// rank-local object, never one shared across rank lambdas (data race).
///
/// When `ft.active()`, the ranks checkpoint every `ft.every` iterations:
/// an extra allgather collects the full assignment so the snapshot records
/// {centroids, changes history, assignment}, and a run that finds a
/// snapshot under `ft.key` resumes from that iteration with its block of
/// the saved assignment — the per-iteration `changes` counts continue
/// exactly where the interrupted run left off.  (Across *different* rank
/// counts the centroid bits may differ — allreduce summation order — so
/// the recovery guarantee here is convergence equivalence, not bit
/// equality; the traffic driver provides the bit-identical variant.)
[[nodiscard]] Result cluster_mpi(mpi::Comm& comm, const data::PointSet& points,
                                 const Options& opts, MpiKmeansStats* stats = nullptr,
                                 const faults::FtOptions& ft = {});

}  // namespace peachy::kmeans
