#include "kmeans/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "kernels/kernels.hpp"
#include "kmeans/detail.hpp"
#include "rng/distributions.hpp"
#include "rng/lcg.hpp"
#include "support/check.hpp"

namespace peachy::kmeans {

std::string to_string(Variant v) {
  switch (v) {
    case Variant::kCritical: return "critical";
    case Variant::kAtomic: return "atomic";
    case Variant::kReduction: return "reduction";
    case Variant::kReductionPadded: return "reduction+padded";
  }
  return "?";
}

namespace detail {

void validate(const data::PointSet& points, const Options& opts) {
  PEACHY_CHECK(points.size() > 0, "kmeans: empty dataset");
  PEACHY_CHECK(opts.k >= 1, "kmeans: k must be at least 1");
  PEACHY_CHECK(opts.k <= points.size(), "kmeans: k exceeds the number of points");
  PEACHY_CHECK(opts.max_iterations >= 1, "kmeans: need at least one iteration");
  PEACHY_CHECK(opts.move_tolerance >= 0.0, "kmeans: negative tolerance");
}

/// Recompute centroids from per-cluster sums/counts; returns the maximum
/// centroid displacement.  Empty clusters keep their previous centroid
/// (the assignment's starter-code behaviour).
double recompute_centroids(data::PointSet& centroids, std::span<const double> sums,
                           std::span<const std::int64_t> counts) {
  const std::size_t k = centroids.size();
  const std::size_t d = centroids.dims();
  double max_move2 = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    double move2 = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double nv = sums[c * d + j] / static_cast<double>(counts[c]);
      const double diff = nv - centroids.at(c, j);
      move2 += diff * diff;
      centroids.at(c, j) = nv;
    }
    max_move2 = std::max(max_move2, move2);
  }
  return std::sqrt(max_move2);
}

}  // namespace detail

data::PointSet initial_centroids(const data::PointSet& points, const Options& opts) {
  detail::validate(points, opts);
  rng::Lcg64 gen{opts.seed};
  data::PointSet centroids(opts.k, points.dims());

  if (opts.init == Init::kRandomPoints) {
    // k distinct points, drawn uniformly.
    std::set<std::size_t> chosen;
    while (chosen.size() < opts.k) {
      chosen.insert(static_cast<std::size_t>(rng::uniform_below(gen, points.size())));
    }
    std::size_t c = 0;
    for (std::size_t idx : chosen) {
      const auto p = points.point(idx);
      std::copy(p.begin(), p.end(), centroids.point(c++).begin());
    }
    return centroids;
  }

  // k-means++: first centroid uniform, then D² sampling.
  std::vector<double> d2(points.size());
  const auto first = static_cast<std::size_t>(rng::uniform_below(gen, points.size()));
  std::copy(points.point(first).begin(), points.point(first).end(),
            centroids.point(0).begin());
  kernels::squared_distances_rows(points.values().data(), points.size(), points.dims(),
                                  centroids.point(0).data(), d2.data());
  for (std::size_t c = 1; c < opts.k; ++c) {
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t pick = 0;
    if (total > 0.0) {
      const double u = rng::uniform01(gen) * total;
      double acc = 0.0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        acc += d2[i];
        if (acc >= u) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<std::size_t>(rng::uniform_below(gen, points.size()));
    }
    std::copy(points.point(pick).begin(), points.point(pick).end(),
              centroids.point(c).begin());
    const double* pv = points.values().data();
    const double* cv = centroids.point(c).data();
    const std::size_t dims = points.dims();
    for (std::size_t i = 0; i < points.size(); ++i) {
      // Exact-duplicate guard: a point at distance 0 can never move
      // closer, so skip its distance computation entirely.
      if (d2[i] == 0.0) continue;
      d2[i] = std::min(d2[i], kernels::squared_distance(pv + i * dims, cv, dims));
    }
  }
  return centroids;
}

std::size_t nearest_centroid(const data::PointSet& centroids, std::span<const double> point) {
  PEACHY_CHECK(point.size() == centroids.dims(), "nearest_centroid: dimension mismatch");
  // Convenience form: builds the panel per call.  The hot loops build it
  // once per iteration and call kernels::argmin_batch directly — both
  // paths share the kernel, so every k-means implementation agrees on
  // assignments bit-for-bit (strict <, ties keep the lower index).
  const auto panel = centroids.transposed_panel();
  return kernels::argmin_batch(point.data(), centroids.dims(), panel.data(), panel.count,
                               panel.padded);
}

double inertia(const data::PointSet& points, const data::PointSet& centroids,
               std::span<const std::int32_t> assignment) {
  PEACHY_CHECK(assignment.size() == points.size(), "inertia: assignment size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    total += centroids.squared_distance(static_cast<std::size_t>(assignment[i]),
                                        points.point(i));
  }
  return total;
}

Result cluster_sequential(const data::PointSet& points, const Options& opts) {
  detail::validate(points, opts);
  const std::size_t n = points.size();
  const std::size_t d = points.dims();
  const std::size_t k = opts.k;

  Result res;
  res.centroids = initial_centroids(points, opts);
  res.assignment.assign(n, -1);

  std::vector<double> sums(k * d);
  std::vector<std::int64_t> counts(k);

  for (res.iterations = 1; res.iterations <= opts.max_iterations; ++res.iterations) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);

    // Phase 1 (+ fused accumulation for phase 2): one pass of the fused
    // assignment kernel over the current centroid panel.
    const auto panel = res.centroids.transposed_panel();
    const std::size_t changes =
        kernels::argmin_assign(points.values().data(), n, d, panel.data(), k, panel.padded,
                               res.assignment.data(), sums.data(), counts.data());
    res.changes_per_iteration.push_back(changes);

    // Phase 2: new centroid positions.
    const double max_move = detail::recompute_centroids(res.centroids, sums, counts);

    if (changes <= opts.min_changes) {
      res.termination = Termination::kMinChanges;
      break;
    }
    if (max_move <= opts.move_tolerance) {
      res.termination = Termination::kCentroidsConverged;
      break;
    }
    if (res.iterations == opts.max_iterations) {
      res.termination = Termination::kMaxIterations;
      break;
    }
  }
  res.iterations = std::min(res.iterations, opts.max_iterations);
  res.inertia = inertia(points, res.centroids, res.assignment);
  return res;
}

}  // namespace peachy::kmeans
