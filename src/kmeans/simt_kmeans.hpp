#pragma once
/// \file simt_kmeans.hpp
/// \brief CUDA/OpenCL-style k-means (paper §3's third model).
///
/// No GPU exists in this container, so the *code structure* students
/// write for CUDA is reproduced on the CPU: computation expressed as
/// kernels over a (blocks × threads-per-block) index space, with
/// block-shared scratch memory.  The two reduction schemes the assignment
/// asks students to compare are both implemented:
///
///  * kGlobalAtomic — every thread atomically updates the global
///    sums/counts (simple, heavy contention);
///  * kBlockShared  — threads accumulate into block-shared memory first,
///    one representative merges each block's partial into the global
///    buffers (the canonical CUDA reduction pattern).
///
/// Blocks execute concurrently on the thread pool; threads within a block
/// execute as lanes of a loop (SIMT semantics without divergence).

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"
#include "support/thread_pool.hpp"

namespace peachy::kmeans {

/// Reduction scheme of the SIMT implementation.
enum class SimtReduce { kGlobalAtomic, kBlockShared };

/// Kernel launch geometry.
struct SimtConfig {
  std::size_t block_size = 128;  ///< threads per block
  SimtReduce reduce = SimtReduce::kBlockShared;
};

/// Telemetry for the atomics-vs-block-reduction experiment (T-KM-3).
struct SimtStats {
  std::uint64_t global_atomic_updates = 0;  ///< atomic RMWs on global memory
  std::size_t blocks_launched = 0;
};

/// Cluster with the SIMT-structured implementation.  Results match the
/// sequential algorithm's trajectory except for floating-point summation
/// order (as on a real GPU).
[[nodiscard]] Result cluster_simt(const data::PointSet& points, const Options& opts,
                                  const SimtConfig& cfg, support::ThreadPool& pool,
                                  SimtStats* stats = nullptr);

}  // namespace peachy::kmeans
