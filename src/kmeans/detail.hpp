#pragma once
/// \file detail.hpp
/// \brief Internals shared by the k-means implementations (sequential,
/// threaded variants, mini-MPI, SIMT).  Not part of the public API.

#include <cstdint>
#include <span>

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"

namespace peachy::kmeans::detail {

/// Validate (points, opts) or throw peachy::Error.
void validate(const data::PointSet& points, const Options& opts);

/// Recompute centroids from per-cluster coordinate sums and counts;
/// returns the maximum centroid displacement (Euclidean).  Empty clusters
/// keep their previous centroid.
double recompute_centroids(data::PointSet& centroids, std::span<const double> sums,
                           std::span<const std::int64_t> counts);

}  // namespace peachy::kmeans::detail
