#pragma once
/// \file kmeans.hpp
/// \brief K-means clustering assignment (paper §3).
///
/// Students receive a sequential program with "static data structures"
/// whose main loop has two phases: (1) re-assign each point to the nearest
/// centroid, tracking the number of cluster changes; (2) recompute each
/// centroid as the mean of its points.  Both phases update shared
/// accumulators — the race conditions the assignment teaches.  The
/// parallelization strategy is reproduced as selectable variants:
///
///   Variant::kCritical   — stage 2 of the strategy: all shared updates
///                          inside one critical region;
///   Variant::kAtomic     — stage 3: atomic fetch-adds;
///   Variant::kReduction  — stage 4: per-thread private accumulators
///                          merged in thread order (deterministic);
///   Variant::kReductionPadded — the "further optimizations based on
///                          cache effects": reduction buffers padded to
///                          cache lines to kill false sharing.
///
/// The distributed (mini-MPI) version is in mpi_kmeans.hpp; the
/// CUDA-style SIMT version in simt_kmeans.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "data/points.hpp"
#include "support/thread_pool.hpp"

namespace peachy::kmeans {

/// Centroid initialization method.
enum class Init {
  kRandomPoints,  ///< k distinct points drawn uniformly (the assignment's default)
  kPlusPlus,      ///< k-means++ (D² sampling)
};

/// Why the main loop stopped — the assignment's three thresholds.
enum class Termination { kMaxIterations, kMinChanges, kCentroidsConverged };

/// Clustering parameters.
struct Options {
  std::size_t k = 8;
  std::size_t max_iterations = 200;
  std::size_t min_changes = 0;       ///< stop when changed points <= this
  double move_tolerance = 1e-8;      ///< stop when max centroid displacement <= this
  Init init = Init::kRandomPoints;
  std::uint64_t seed = 1;
};

/// Clustering output.
struct Result {
  data::PointSet centroids;               ///< k × d final centroid positions
  std::vector<std::int32_t> assignment;   ///< cluster of each input point
  std::size_t iterations = 0;
  Termination termination = Termination::kMaxIterations;
  double inertia = 0.0;                   ///< Σ point-to-centroid squared distance
  std::vector<std::size_t> changes_per_iteration;
};

/// OpenMP-strategy stage (see file comment).
enum class Variant { kCritical, kAtomic, kReduction, kReductionPadded };

[[nodiscard]] std::string to_string(Variant v);

/// Initial centroids for a dataset (exposed so every implementation —
/// sequential, threaded, MPI, SIMT — starts from identical positions).
[[nodiscard]] data::PointSet initial_centroids(const data::PointSet& points,
                                               const Options& opts);

/// Index of the centroid nearest to points[i] (ties break to the lower
/// centroid index — keeps every implementation bit-agreeing).
[[nodiscard]] std::size_t nearest_centroid(const data::PointSet& centroids,
                                           std::span<const double> point);

/// The intentionally understandable sequential reference (the starter
/// code students receive).
[[nodiscard]] Result cluster_sequential(const data::PointSet& points, const Options& opts);

/// Shared-memory parallel clustering in the chosen strategy stage, on
/// `threads` pool tasks with a static schedule.
[[nodiscard]] Result cluster_parallel(const data::PointSet& points, const Options& opts,
                                      Variant variant, support::ThreadPool& pool,
                                      std::size_t threads);

/// Σ squared distance of each point to its assigned centroid.
[[nodiscard]] double inertia(const data::PointSet& points, const data::PointSet& centroids,
                             std::span<const std::int32_t> assignment);

}  // namespace peachy::kmeans
