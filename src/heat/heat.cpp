#include "heat/heat.hpp"

#include <cmath>

#include "kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace peachy::heat {

namespace {

constexpr double kPi = 3.14159265358979323846;

void validate(const Spec& spec) {
  PEACHY_CHECK(spec.nx >= 3, "heat: need at least 3 grid points");
  PEACHY_CHECK(spec.alpha > 0.0 && spec.alpha <= 0.5,
               "heat: alpha must be in (0, 0.5] for stability");
}

std::vector<double> initial_values(const Spec& spec, const Initial& initial) {
  PEACHY_CHECK(initial != nullptr, "heat: null initial condition");
  std::vector<double> u(spec.nx);
  for (std::size_t j = 0; j < spec.nx; ++j) {
    u[j] = initial(static_cast<double>(j) / static_cast<double>(spec.nx - 1));
  }
  u.front() = spec.left_bc;
  u.back() = spec.right_bc;
  return u;
}

}  // namespace

Initial sine_mode(int m) {
  PEACHY_CHECK(m >= 1, "heat: sine mode must be positive");
  return [m](double s) { return std::sin(m * kPi * s); };
}

std::vector<double> discrete_sine_solution(const Spec& spec, int m) {
  validate(spec);
  PEACHY_CHECK(spec.left_bc == 0.0 && spec.right_bc == 0.0,
               "heat: the sine eigenmode needs homogeneous boundaries");
  const double n1 = static_cast<double>(spec.nx - 1);
  const double s = std::sin(m * kPi / (2.0 * n1));
  const double lambda = 1.0 - 4.0 * spec.alpha * s * s;
  const double decay = std::pow(lambda, static_cast<double>(spec.nt));
  std::vector<double> u(spec.nx);
  for (std::size_t j = 0; j < spec.nx; ++j) {
    u[j] = decay * std::sin(m * kPi * static_cast<double>(j) / n1);
  }
  u.front() = 0.0;
  u.back() = 0.0;
  return u;
}

std::vector<double> solve_serial(const Spec& spec, const Initial& initial,
                                 const faults::FtOptions& ft) {
  validate(spec);
  std::vector<double> u = initial_values(spec, initial);
  std::vector<double> un = u;
  std::size_t first = 0;
  if (ft.active()) {
    if (const auto snap = ft.store->load(ft.key)) {
      u = faults::BlobReader{snap->blob}.get_vec<double>();
      PEACHY_CHECK(u.size() == spec.nx, "heat restart: snapshot grid size mismatch");
      first = static_cast<std::size_t>(snap->next_step);
      if (obs::enabled()) obs::counter("faults.restores").add(1);
    }
  }
  for (std::size_t step = first; step < spec.nt; ++step) {
    std::swap(u, un);  // step 4.1 of the assignment's algorithm
    // Step 4.2 over Ω̂: the boundary cells u[0] / u[nx-1] are the halo the
    // kernel reads at src[-1] / src[n].
    kernels::stencil_row(u.data() + 1, un.data() + 1, spec.nx - 2, spec.alpha);
    if (ft.active() && (step + 1) % static_cast<std::size_t>(ft.every) == 0) {
      faults::BlobWriter w;
      w.put_vec(u);
      ft.store->save(ft.key, faults::Snapshot{step + 1, std::move(w).take()});
      if (obs::enabled()) obs::counter("faults.checkpoints").add(1);
    }
  }
  return u;
}

std::vector<double> solve_forall(const Spec& spec, const Initial& initial,
                                 chapel::LocaleGrid& grid, SolveStats* stats) {
  validate(spec);
  support::Stopwatch sw;
  const std::uint64_t tasks_before = grid.tasks_spawned();

  chapel::BlockDist1D<double> u{grid, spec.nx};
  chapel::BlockDist1D<double> un{grid, spec.nx};
  {
    const auto values = initial_values(spec, initial);
    for (std::size_t j = 0; j < spec.nx; ++j) {
      u[j] = values[j];
      un[j] = values[j];
    }
    u.reset_counters();
    un.reset_counters();
  }

  for (std::size_t step = 0; step < spec.nt; ++step) {
    u.swap(un);
    // The Part-1 pattern: one forall (fresh tasks) per time step; the
    // stencil's edge reads cross locales implicitly.
    grid.forall(u.interior(), [&](std::size_t j) {
      u[j] = un[j] + spec.alpha * (un[j - 1] - 2.0 * un[j] + un[j + 1]);
    });
  }

  std::vector<double> out(spec.nx);
  for (std::size_t j = 0; j < spec.nx; ++j) out[j] = u[j];
  if (stats != nullptr) {
    stats->tasks_spawned = grid.tasks_spawned() - tasks_before;
    stats->remote_accesses = u.remote_accesses() + un.remote_accesses();
    stats->seconds = sw.elapsed_s();
  }
  return out;
}

std::vector<double> solve_coforall(const Spec& spec, const Initial& initial,
                                   chapel::LocaleGrid& grid, SolveStats* stats) {
  validate(spec);
  PEACHY_CHECK(grid.size() <= spec.nx - 2,
               "heat: more locales than interior points (empty tasks would "
               "break the halo chain)");
  support::Stopwatch sw;
  const std::uint64_t tasks_before = grid.tasks_spawned();
  const std::size_t L = grid.size();
  const auto init = initial_values(spec, initial);

  // Interior domain split across locales; each task owns a contiguous
  // chunk padded with two halo cells.
  const std::size_t interior = spec.nx - 2;
  std::vector<double> result(spec.nx);
  result.front() = spec.left_bc;
  result.back() = spec.right_bc;

  // Shared halo buffer: edge values published per task per step.
  std::vector<double> halo_left(L, 0.0);   // task l's first interior value
  std::vector<double> halo_right(L, 0.0);  // task l's last interior value
  chapel::Barrier barrier{L};

  grid.coforall_locales([&](std::size_t l) {
    const auto blk = support::static_block(interior, L, l);
    const std::size_t len = blk.end - blk.begin;
    // Local arrays with halo cells at [0] and [len+1] (array slices of
    // the initial conditions, as in Example2).
    std::vector<double> u(len + 2), un(len + 2);
    for (std::size_t i = 0; i < len; ++i) u[i + 1] = init[1 + blk.begin + i];
    u[0] = blk.begin == 0 ? spec.left_bc : init[blk.begin];  // neighbors' edges
    u[len + 1] = blk.end == interior ? spec.right_bc : init[1 + blk.end];
    un = u;

    for (std::size_t step = 0; step < spec.nt; ++step) {
      std::swap(u, un);
      // Publish my edges, then wait for everyone before reading halos.
      if (len > 0) {
        halo_left[l] = un[1];
        halo_right[l] = un[len];
      }
      barrier.arrive_and_wait();
      const double left_in = l == 0 || blk.begin == 0 ? spec.left_bc : halo_right[l - 1];
      const double right_in =
          l + 1 == L || blk.end == interior ? spec.right_bc : halo_left[l + 1];
      un[0] = left_in;
      un[len + 1] = right_in;
      // Order-independent local update — the assignment's foreach is a
      // vectorization hint, honored literally with the stencil kernel
      // (halo cells un[0] / un[len+1] are the src[-1] / src[n] reads).
      kernels::stencil_row(u.data() + 1, un.data() + 1, len, spec.alpha);
      // Nobody may publish step+1 edges until all have read step's halos.
      barrier.arrive_and_wait();
    }
    for (std::size_t i = 0; i < len; ++i) result[1 + blk.begin + i] = u[i + 1];
  });

  if (stats != nullptr) {
    stats->tasks_spawned = grid.tasks_spawned() - tasks_before;
    stats->remote_accesses = 2 * L * spec.nt;  // explicit halo reads/writes
    stats->seconds = sw.elapsed_s();
  }
  return result;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  PEACHY_CHECK(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace peachy::heat
