#pragma once
/// \file heat.hpp
/// \brief 1D heat equation in the Chapel model (paper §6).
///
/// Solves ∂u/∂t = α·∂²u/∂x² with the explicit scheme
///
///     u&#8319;⁺¹[x] = u&#8319;[x] + α·(u&#8319;[x−1] − 2·u&#8319;[x] + u&#8319;[x+1])
///
/// under Dirichlet boundary conditions, in the assignment's three forms:
///
///  * solve_serial   — the non-distributed starter code;
///  * solve_forall   — Part 1: a `forall` over a Block-distributed array
///    each time step (implicit data parallelism; the runtime spawns and
///    joins fresh tasks every step, and boundary-adjacent stencil reads
///    cross locales implicitly — both costs are counted);
///  * solve_coforall — Part 2: one persistent task per locale
///    (`coforall … on loc`), a reusable barrier, and explicit halo-cell
///    exchange — "a more efficient solver by reducing overhead".
///
/// The analytic discrete solution of the scheme's sine eigenmode is
/// provided for convergence/validation tests.

#include <cstdint>
#include <functional>
#include <vector>

#include "chapel/chapel.hpp"
#include "faults/checkpoint.hpp"

namespace peachy::heat {

/// Problem parameters.  The explicit scheme is stable for alpha <= 0.5
/// (grid units: dx = dt = 1).
struct Spec {
  std::size_t nx = 1000;     ///< grid points, including the two boundary points
  std::size_t nt = 100;      ///< time steps
  double alpha = 0.25;       ///< diffusion number α·Δt/Δx²
  double left_bc = 0.0;      ///< Dirichlet value at x = 0
  double right_bc = 0.0;     ///< Dirichlet value at x = nx−1
};

/// Initial condition: maps normalized position s ∈ [0,1] to u(s, 0).
using Initial = std::function<double(double s)>;

/// The canonical test initial condition sin(m·π·s).
[[nodiscard]] Initial sine_mode(int m = 1);

/// Exact solution of the *discrete* scheme for the sine eigenmode after
/// nt steps: sin(m·π·j/(nx−1)) · λ&#8319;ᵗ with λ = 1 − 4α·sin²(m·π/(2(nx−1))).
[[nodiscard]] std::vector<double> discrete_sine_solution(const Spec& spec, int m);

/// Telemetry contrasting the two distributed versions (experiment T-HT-1).
struct SolveStats {
  std::uint64_t tasks_spawned = 0;    ///< Chapel tasks created during the solve
  std::uint64_t remote_accesses = 0;  ///< cross-locale element reads
  double seconds = 0.0;
};

/// Non-distributed reference (the provided Example1 starter code).
///
/// When `ft.active()`, the grid is snapshotted every `ft.every` steps and
/// a run that finds a snapshot under `ft.key` resumes from it.  The scheme
/// is a pure function of the previous grid, so a resumed run is
/// bit-identical to an uninterrupted one.
[[nodiscard]] std::vector<double> solve_serial(const Spec& spec, const Initial& initial,
                                               const faults::FtOptions& ft = {});

/// Part 1: forall over a Block-distributed array, one parallel region per
/// time step.
[[nodiscard]] std::vector<double> solve_forall(const Spec& spec, const Initial& initial,
                                               chapel::LocaleGrid& grid,
                                               SolveStats* stats = nullptr);

/// Part 2: persistent per-locale tasks, barrier synchronization, and halo
/// cells exchanged through a shared buffer.
[[nodiscard]] std::vector<double> solve_coforall(const Spec& spec, const Initial& initial,
                                                 chapel::LocaleGrid& grid,
                                                 SolveStats* stats = nullptr);

/// Max-norm distance between two solutions (validation helper).
[[nodiscard]] double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace peachy::heat
