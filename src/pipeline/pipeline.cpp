#include "pipeline/pipeline.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/timer.hpp"

namespace peachy::pipeline {

Pipeline& Pipeline::stage(std::string name, std::function<void()> body) {
  PEACHY_CHECK(!name.empty(), "pipeline: empty stage name");
  PEACHY_CHECK(body != nullptr, "pipeline: null stage body");
  PEACHY_CHECK(!ran_, "pipeline: cannot add stages after run()");
  stages_.push_back({std::move(name), std::move(body)});
  return *this;
}

void Pipeline::run() {
  PEACHY_CHECK(!ran_, "pipeline: run() called twice");
  PEACHY_CHECK(!stages_.empty(), "pipeline: no stages");
  ran_ = true;
  timings_.reserve(stages_.size());
  for (const Stage& st : stages_) {
    support::Stopwatch sw;
    try {
      st.body();
    } catch (const std::exception& e) {
      throw Error{"pipeline stage '" + st.name + "' failed: " + e.what()};
    }
    timings_.push_back({st.name, sw.elapsed_s()});
  }
}

double Pipeline::total_seconds() const noexcept {
  double total = 0.0;
  for (const auto& t : timings_) total += t.seconds;
  return total;
}

std::string Pipeline::report() const {
  std::ostringstream os;
  os << "pipeline stages:\n";
  for (const auto& t : timings_) {
    os << "  " << t.name << ": " << t.seconds * 1e3 << " ms\n";
  }
  os << "  total: " << total_seconds() * 1e3 << " ms\n";
  return os.str();
}

}  // namespace peachy::pipeline
