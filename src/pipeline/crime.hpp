#pragma once
/// \file crime.hpp
/// \brief The Fig. 2 crime-analysis workflow (paper §4).
///
/// Reproduces the student project the paper showcases: "the number of
/// arrests in distinct neighborhoods of New York City", built from four
/// datasets — arrests (historic and current year), NTA boundaries, and
/// NTA population — through a pipeline that "identifies the spatial
/// positions of all arrests, accumulates the number of arrests in each
/// neighborhood, and plots a heat map" of arrests per 100,000 citizens.
///
/// Data flow (all on the spark RDD engine, per Fig. 2):
///   ingest 4 CSVs → clean/filter to the target year → spatial join
///   (point-in-NTA) → reduce_by_key per NTA → join population →
///   per-100k normalization → heat map + ranked table.
///
/// The project brief requires ≥3 analysis problems over the datasets;
/// this workflow answers three: (1) arrests per 100k per NTA, (2) the
/// offense-category distribution, (3) year-over-year arrests per borough.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geo/city.hpp"
#include "geo/raster.hpp"
#include "pipeline/pipeline.hpp"
#include "spark/context.hpp"

namespace peachy::pipeline {

/// Workflow parameters.
struct CrimeConfig {
  geo::CitySpec city;                  ///< synthetic city standing in for NYC
  std::size_t historic_arrests = 40000;  ///< events in the "historic" dataset
  std::size_t current_arrests = 20000;   ///< events in the "current year" dataset
  std::int32_t target_year = 2021;     ///< Fig. 2 analyzes 2021
  std::uint64_t seed = 7;
  std::size_t partitions = 8;          ///< spark partitions
  std::size_t threads = 4;             ///< spark worker threads
  std::size_t raster_width = 96;
  std::size_t raster_height = 64;
};

/// One row of the ranked output table.
struct NtaRate {
  std::string nta;
  std::string borough;
  std::int64_t arrests = 0;
  std::int64_t population = 0;
  double per_100k = 0.0;
};

/// Everything the workflow produces.
struct CrimeReport {
  // Problem 1: arrests per 100k per NTA (Fig. 2's deliverable).
  std::vector<NtaRate> rates;          ///< sorted by per_100k descending
  std::string heat_map_pgm;            ///< the Fig. 2 heat map (binary PGM)
  std::string heat_map_ascii;          ///< terminal rendering of the same map

  // Problem 2: offense-category distribution over the target year.
  std::map<std::string, std::int64_t> offenses;

  // Problem 3: year-over-year arrests per borough (all years ingested).
  std::map<std::string, std::map<std::int32_t, std::int64_t>> borough_by_year;

  // Pipeline health/telemetry.
  std::vector<StageTiming> stage_timings;
  spark::EngineStats engine;
  std::size_t events_ingested = 0;     ///< rows parsed from the two arrest CSVs
  std::size_t events_in_target_year = 0;
  std::size_t events_located = 0;      ///< events matched to an NTA
};

/// Run the full workflow.  The four input datasets are generated from
/// `cfg.city`, serialized to CSV, and re-parsed — so the ingest stage
/// exercises the real text path.  Deterministic in cfg.seed.
[[nodiscard]] CrimeReport run_crime_pipeline(const CrimeConfig& cfg);

/// Serial oracle for problem 1 (no spark, no pipeline) — used by tests
/// and the bench harness to validate the distributed result.
[[nodiscard]] std::vector<NtaRate> crime_rates_serial(const CrimeConfig& cfg);

}  // namespace peachy::pipeline
