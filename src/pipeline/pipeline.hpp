#pragma once
/// \file pipeline.hpp
/// \brief Generic data-analysis pipeline runner (paper §4).
///
/// The programming project teaches "designing, constructing, and
/// improving true data analysis pipelines": named stages, executed in
/// order, each timed — so students can see where their workflow spends
/// its time and iterate.  The Fig. 2 crime workflow (crime.hpp) is built
/// on this runner.

#include <functional>
#include <string>
#include <vector>

namespace peachy::pipeline {

/// Wall-clock timing of one executed stage.
struct StageTiming {
  std::string name;
  double seconds = 0.0;
};

/// An ordered list of named stages.  Stages run sequentially (each stage
/// may be internally parallel — e.g. spark actions); failures propagate
/// with the stage name attached.
class Pipeline {
 public:
  /// Append a stage.  Returns *this for chaining.
  Pipeline& stage(std::string name, std::function<void()> body);

  /// Execute all stages in order.  Throws peachy::Error naming the stage
  /// if a body throws.  May be called once per instance.
  void run();

  /// Per-stage wall times (valid after run()).
  [[nodiscard]] const std::vector<StageTiming>& timings() const noexcept { return timings_; }

  /// Total seconds across stages.
  [[nodiscard]] double total_seconds() const noexcept;

  /// Render a per-stage timing table.
  [[nodiscard]] std::string report() const;

 private:
  struct Stage {
    std::string name;
    std::function<void()> body;
  };
  std::vector<Stage> stages_;
  std::vector<StageTiming> timings_;
  bool ran_ = false;
};

}  // namespace peachy::pipeline
