#include "pipeline/crime.hpp"

#include <algorithm>
#include <cstdio>

#include "data/csv.hpp"
#include "data/frame.hpp"
#include "spark/pair_rdd.hpp"
#include "spark/rdd.hpp"
#include "support/check.hpp"

namespace peachy::pipeline {

namespace {

/// In-flight arrest record (after parsing, before the spatial join).
struct ArrestRecord {
  double x = 0.0;
  double y = 0.0;
  std::int32_t year = 0;
  std::int32_t offense = -1;  ///< index into geo::offense_categories()
};

/// Serialize events to the CSV layout of the published datasets.
std::vector<data::CsvRow> events_to_csv(const std::vector<geo::ArrestEvent>& events) {
  std::vector<data::CsvRow> rows;
  rows.reserve(events.size() + 1);
  rows.push_back({"x", "y", "year", "offense"});
  for (const auto& ev : events) {
    char xbuf[32], ybuf[32];
    std::snprintf(xbuf, sizeof xbuf, "%.12g", ev.location.x);
    std::snprintf(ybuf, sizeof ybuf, "%.12g", ev.location.y);
    rows.push_back({xbuf, ybuf, std::to_string(ev.year), ev.offense});
  }
  return rows;
}

/// Parse an arrests CSV (as produced above) into records.
std::vector<ArrestRecord> parse_arrests(const std::vector<data::CsvRow>& rows) {
  const data::Frame frame = data::Frame::from_csv(rows);
  const auto& vocab = geo::offense_categories();
  std::vector<ArrestRecord> records;
  records.reserve(frame.rows());
  for (std::size_t r = 0; r < frame.rows(); ++r) {
    ArrestRecord rec;
    rec.x = frame.num(r, "x");
    rec.y = frame.num(r, "y");
    rec.year = static_cast<std::int32_t>(frame.integer(r, "year"));
    const std::string& off = frame.str(r, "offense");
    const auto it = std::find(vocab.begin(), vocab.end(), off);
    PEACHY_CHECK(it != vocab.end(), "crime: unknown offense '" + off + "'");
    rec.offense = static_cast<std::int32_t>(it - vocab.begin());
    records.push_back(rec);
  }
  return records;
}

std::vector<NtaRate> finalize_rates(std::vector<NtaRate> rates) {
  std::sort(rates.begin(), rates.end(), [](const NtaRate& a, const NtaRate& b) {
    if (a.per_100k != b.per_100k) return a.per_100k > b.per_100k;
    return a.nta < b.nta;
  });
  return rates;
}

}  // namespace

CrimeReport run_crime_pipeline(const CrimeConfig& cfg) {
  PEACHY_CHECK(cfg.partitions >= 1 && cfg.threads >= 1,
               "crime: partitions and threads must be positive");
  CrimeReport report;

  // ---- the four source datasets (generated, serialized, re-parsed) ------
  const geo::SyntheticCity city{cfg.city};
  const auto historic_events =
      city.generate_arrests(cfg.historic_arrests, cfg.seed, {2019, 2020});
  const auto current_events =
      city.generate_arrests(cfg.current_arrests, cfg.seed + 1, {cfg.target_year});
  const auto historic_csv = events_to_csv(historic_events);
  const auto current_csv = events_to_csv(current_events);
  std::vector<data::CsvRow> population_csv{{"nta", "borough", "population"}};
  for (const auto& nta : city.ntas()) {
    population_csv.push_back({nta.code, nta.borough, std::to_string(nta.population)});
  }
  // (The fourth dataset — NTA boundaries — is the polygon set held by the
  // city's spatial index, the analogue of the GeoJSON boundary file.)

  auto ctx = spark::Context::create(cfg.threads, cfg.partitions);

  std::vector<ArrestRecord> historic, current;
  spark::Rdd<ArrestRecord> all_arrests = spark::parallelize(ctx, std::vector<ArrestRecord>{}, 1);
  spark::Rdd<ArrestRecord> year_arrests = all_arrests;
  std::vector<std::pair<std::string, std::int64_t>> nta_counts;
  std::map<std::string, std::int64_t> populations;
  std::map<std::string, std::string> borough_of;
  for (const auto& nta : city.ntas()) borough_of[nta.code] = nta.borough;

  Pipeline pipe;
  pipe.stage("ingest", [&] {
        historic = parse_arrests(historic_csv);
        current = parse_arrests(current_csv);
        const data::Frame pop = data::Frame::from_csv(population_csv);
        for (std::size_t r = 0; r < pop.rows(); ++r) {
          populations[pop.str(r, "nta")] = pop.integer(r, "population");
        }
        report.events_ingested = historic.size() + current.size();
        all_arrests = spark::parallelize(ctx, historic, cfg.partitions)
                          .union_with(spark::parallelize(ctx, current, cfg.partitions));
      })
      .stage("clean", [&] {
        year_arrests = all_arrests
                           .filter([year = cfg.target_year](
                                       const ArrestRecord& r) { return r.year == year; },
                                   "filter(year)")
                           .cache();
        report.events_in_target_year = year_arrests.count();
      })
      .stage("spatial-join", [&] {
        auto located = year_arrests
                           .map(
                               [&city](const ArrestRecord& r) {
                                 const auto id = city.locate({r.x, r.y});
                                 return std::pair<std::string, std::int64_t>{
                                     id ? city.ntas()[*id].code : std::string{}, 1};
                               },
                               "locate(point→nta)")
                           .filter([](const auto& kv) { return !kv.first.empty(); },
                                   "drop unlocated");
        auto counted = spark::reduce_by_key(located, std::plus<>{});
        nta_counts = counted.collect();
        report.events_located = 0;
        for (const auto& [nta, c] : nta_counts) report.events_located += c;
      })
      .stage("join-population+normalize", [&] {
        auto counts_rdd = spark::parallelize(ctx, nta_counts, cfg.partitions);
        std::vector<std::pair<std::string, std::int64_t>> pop_pairs(populations.begin(),
                                                                    populations.end());
        auto joined = spark::join(counts_rdd, spark::parallelize(ctx, pop_pairs, cfg.partitions));
        std::vector<NtaRate> rates;
        for (const auto& [nta, arrests_pop] : joined.collect()) {
          NtaRate row;
          row.nta = nta;
          row.borough = borough_of.at(nta);
          row.arrests = arrests_pop.first;
          row.population = arrests_pop.second;
          row.per_100k = 1e5 * static_cast<double>(row.arrests) /
                         static_cast<double>(row.population);
          rates.push_back(std::move(row));
        }
        report.rates = finalize_rates(std::move(rates));
      })
      .stage("offense-distribution", [&] {
        const auto& vocab = geo::offense_categories();
        auto by_offense = spark::reduce_by_key(
            year_arrests.map(
                [&vocab](const ArrestRecord& r) {
                  return std::pair<std::string, std::int64_t>{
                      vocab[static_cast<std::size_t>(r.offense)], 1};
                },
                "key by offense"),
            std::plus<>{});
        for (const auto& [offense, c] : by_offense.collect()) report.offenses[offense] = c;
      })
      .stage("borough-year-trend", [&] {
        auto keyed = all_arrests
                         .map(
                             [&city](const ArrestRecord& r) {
                               const auto id = city.locate({r.x, r.y});
                               const std::string borough =
                                   id ? city.ntas()[*id].borough : std::string{};
                               return std::pair<std::string, std::int64_t>{
                                   borough + "|" + std::to_string(r.year), 1};
                             },
                             "key by borough|year")
                         .filter([](const auto& kv) { return kv.first.front() != '|'; },
                                 "drop unlocated");
        for (const auto& [key, c] : spark::reduce_by_key(keyed, std::plus<>{}).collect()) {
          const auto bar = key.find('|');
          report.borough_by_year[key.substr(0, bar)]
                                [static_cast<std::int32_t>(std::stoi(key.substr(bar + 1)))] = c;
        }
      })
      .stage("render-heat-map", [&] {
        std::vector<double> values(city.ntas().size(), 0.0);
        std::map<std::string, std::size_t> id_of;
        for (std::size_t i = 0; i < city.ntas().size(); ++i) id_of[city.ntas()[i].code] = i;
        for (const auto& row : report.rates) values[id_of.at(row.nta)] = row.per_100k;
        const auto raster = geo::rasterize_choropleth(city.index(), values, cfg.raster_width,
                                                      cfg.raster_height);
        report.heat_map_pgm = raster.to_pgm();
        report.heat_map_ascii = raster.to_ascii();
      });
  pipe.run();

  report.stage_timings = pipe.timings();
  report.engine = ctx->stats();
  return report;
}

std::vector<NtaRate> crime_rates_serial(const CrimeConfig& cfg) {
  const geo::SyntheticCity city{cfg.city};
  const auto current = city.generate_arrests(cfg.current_arrests, cfg.seed + 1,
                                             {cfg.target_year});
  const auto historic = city.generate_arrests(cfg.historic_arrests, cfg.seed, {2019, 2020});
  std::vector<geo::ArrestEvent> in_year;
  for (const auto& ev : current) {
    if (ev.year == cfg.target_year) in_year.push_back(ev);
  }
  for (const auto& ev : historic) {
    if (ev.year == cfg.target_year) in_year.push_back(ev);
  }
  const auto counts = city.count_by_nta(in_year);
  std::vector<NtaRate> rates;
  for (std::size_t i = 0; i < city.ntas().size(); ++i) {
    if (counts[i] == 0) continue;  // the pipeline reports observed NTAs only
    NtaRate row;
    row.nta = city.ntas()[i].code;
    row.borough = city.ntas()[i].borough;
    row.arrests = counts[i];
    row.population = city.ntas()[i].population;
    row.per_100k = 1e5 * static_cast<double>(row.arrests) / static_cast<double>(row.population);
    rates.push_back(std::move(row));
  }
  return finalize_rates(std::move(rates));
}

}  // namespace peachy::pipeline
