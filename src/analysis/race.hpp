#pragma once
/// \file race.hpp
/// \brief Lockset + range-overlap race detector for shared-array access.
///
/// The classic student bug in the paper's k-means / kNN / heat assignments
/// is racing on a shared accumulator inside a `parallel_for` or Chapel
/// `forall`.  This detector catches it *schedule-independently*: workers
/// record the index ranges they read/write on a named shared array, and
/// two accesses conflict when they
///   1. are concurrent in the fork-join region tree — same parallel
///      region, or nested regions opened by concurrent sibling tasks
///      (epoch ancestor chains — see hooks.hpp),
///   2. come from different logical tasks,
///   3. overlap as ranges, with at least one write, and
///   4. hold no common `TrackedMutex` (Eraser-style lockset rule).
/// Because the rule is about the *program structure* and not the observed
/// interleaving, a race is reported even on a single-core machine where
/// the buggy schedule never actually manifests.
///
/// `SharedArray<T>` is the instrumented container used by tests and the
/// grading demo; its physical storage accesses are internally serialized
/// (so the fixture programs stay ThreadSanitizer-clean) while the
/// detector reasons about the *logical* race the student wrote.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/hooks.hpp"
#include "analysis/report.hpp"

namespace peachy::analysis {

/// Records per-worker access ranges on one shared array and diagnoses
/// conflicting pairs on demand.  Thread-safe.
class RaceDetector {
 public:
  explicit RaceDetector(std::string array_name);

  /// Record that the current logical task reads / writes [lo, hi).
  void record_read(std::size_t lo, std::size_t hi);
  void record_write(std::size_t lo, std::size_t hi);

  /// Analyse the access log and return the findings (at most
  /// `kMaxFindings` conflict pairs, then the analysis notes truncation).
  [[nodiscard]] Report report() const;

  void reset();

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;

  static constexpr std::size_t kMaxFindings = 16;
  static constexpr std::size_t kMaxLog = std::size_t{1} << 16;

 private:
  struct Access {
    std::uint64_t epoch;
    std::size_t worker;
    std::size_t lo, hi;
    bool write;
    std::vector<const void*> locks;
  };

  void record(bool write, std::size_t lo, std::size_t hi);
  /// `aa` / `ab` are the region-ancestor identities of each access's epoch
  /// (outermost first, excluding the access's own leaf identity).
  [[nodiscard]] static bool concurrent(const std::vector<TaskIdentity>& aa, const Access& a,
                                       const std::vector<TaskIdentity>& ab,
                                       const Access& b) noexcept;
  [[nodiscard]] static bool conflict(const std::vector<TaskIdentity>& aa, const Access& a,
                                     const std::vector<TaskIdentity>& ab,
                                     const Access& b) noexcept;
  [[nodiscard]] Finding make_finding(const Access& a, const Access& b) const;

  std::string name_;
  mutable std::mutex mu_;
  std::vector<Access> log_;
  std::uint64_t dropped_ = 0;
};

/// A shared array whose element accesses are visible to a RaceDetector.
/// Reads/writes are recorded against the calling task's identity; storage
/// itself is serialized by an internal (untracked) mutex so intentionally
/// racy fixture programs do not exhibit physical data races under TSan.
template <typename T>
class SharedArray {
 public:
  SharedArray(std::string name, std::size_t n, T init = T{})
      : det_{std::move(name)}, data_(n, init) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] T read(std::size_t i) const {
    det_.record_read(i, i + 1);
    std::lock_guard lock{storage_mu_};
    return data_[i];
  }

  void write(std::size_t i, T v) {
    det_.record_write(i, i + 1);
    std::lock_guard lock{storage_mu_};
    data_[i] = std::move(v);
  }

  /// Read-modify-write (`a[i] = f(a[i])`) — records as a write, since the
  /// read is part of the same unprotected update the student wrote.
  template <typename F>
  void update(std::size_t i, F&& f) {
    det_.record_write(i, i + 1);
    std::lock_guard lock{storage_mu_};
    data_[i] = f(data_[i]);
  }

  /// Uninstrumented snapshot of the contents (serial phases only).
  [[nodiscard]] std::vector<T> values() const {
    std::lock_guard lock{storage_mu_};
    return data_;
  }

  [[nodiscard]] RaceDetector& detector() const noexcept { return det_; }
  [[nodiscard]] Report report() const { return det_.report(); }

 private:
  mutable RaceDetector det_;
  mutable std::mutex storage_mu_;
  std::vector<T> data_;
};

}  // namespace peachy::analysis
