#pragma once
/// \file hooks.hpp
/// \brief Substrate instrumentation hooks for `peachy::analysis`.
///
/// Header-only, dependency-free identity layer.  The execution substrates
/// (parallel_for blocks, Chapel forall/coforall tasks, spark partitions,
/// raw ThreadPool tasks) publish *which logical task is running* through a
/// thread-local `TaskIdentity`; analysis tools (`RaceDetector`) read it
/// whenever an instrumented access happens.  Publishing costs two
/// thread-local stores per task block — not per element — so it is always
/// compiled in and detectors work in every build configuration.
///
/// Epochs encode the fork-join structure the detectors reason about: each
/// structured parallel region (parallel_for / forall / coforall / spark
/// stage) gets a fresh epoch, and only accesses in the *same* epoch can
/// race — regions are separated by joins, which establish happens-before.
/// `kSerialEpoch` (0) is code outside any region; `kUnstructuredEpoch`
/// marks raw `ThreadPool::submit` tasks, which carry no join information
/// and therefore race only among themselves.
///
/// The lockset half mirrors the classic Eraser algorithm: `TrackedMutex`
/// registers itself in a thread-local set of held locks, and the race
/// detector declares two conflicting accesses benign when their locksets
/// intersect — so the canonical student fix (a mutex around the shared
/// accumulator) is recognized as correct.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace peachy::analysis {

inline constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
inline constexpr std::uint64_t kSerialEpoch = 0;
inline constexpr std::uint64_t kUnstructuredEpoch = ~std::uint64_t{0};

/// Identity of the logical task executing on the current thread.
struct TaskIdentity {
  std::size_t worker = kNoWorker;  ///< logical task id within its region
  std::uint64_t epoch = kSerialEpoch;
};

namespace detail {
inline thread_local TaskIdentity tls_task{};
inline thread_local std::vector<const void*> tls_lockset{};
inline std::atomic<std::uint64_t> g_epoch{kSerialEpoch};
}  // namespace detail

[[nodiscard]] inline TaskIdentity current_task() noexcept { return detail::tls_task; }

/// Allocate a fresh epoch for one structured parallel region.
[[nodiscard]] inline std::uint64_t begin_parallel_region() noexcept {
  return detail::g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// RAII publication of a logical task identity; nests (inner scopes win,
/// e.g. a parallel_for block overriding the pool worker's identity).
class TaskScope {
 public:
  TaskScope(std::size_t worker, std::uint64_t epoch) noexcept : saved_{detail::tls_task} {
    detail::tls_task = TaskIdentity{worker, epoch};
  }
  ~TaskScope() { detail::tls_task = saved_; }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  TaskIdentity saved_;
};

// ---- lockset tracking -------------------------------------------------------

inline void lockset_acquired(const void* m) { detail::tls_lockset.push_back(m); }

inline void lockset_released(const void* m) noexcept {
  auto& ls = detail::tls_lockset;
  for (auto it = ls.rbegin(); it != ls.rend(); ++it) {
    if (*it == m) {
      ls.erase(std::next(it).base());
      return;
    }
  }
}

/// Locks held by the current thread (registration order).
[[nodiscard]] inline const std::vector<const void*>& current_lockset() noexcept {
  return detail::tls_lockset;
}

/// Drop-in `std::mutex` replacement that reports to the thread's lockset,
/// making critical sections visible to the race detector.  Satisfies the
/// Lockable requirements, so it works with std::lock_guard / scoped_lock.
class TrackedMutex {
 public:
  void lock() {
    mu_.lock();
    lockset_acquired(this);
  }
  void unlock() {
    lockset_released(this);
    mu_.unlock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    lockset_acquired(this);
    return true;
  }

 private:
  std::mutex mu_;
};

}  // namespace peachy::analysis
