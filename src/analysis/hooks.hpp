#pragma once
/// \file hooks.hpp
/// \brief Substrate instrumentation hooks for `peachy::analysis`.
///
/// Header-only, dependency-free identity layer.  The execution substrates
/// (parallel_for blocks, Chapel forall/coforall tasks, spark partitions,
/// raw ThreadPool tasks) publish *which logical task is running* through a
/// thread-local `TaskIdentity`; analysis tools (`RaceDetector`) read it
/// whenever an instrumented access happens.  Publishing costs two
/// thread-local stores per task block — not per element — so it is always
/// compiled in and detectors work in every build configuration.
///
/// Epochs encode the fork-join structure the detectors reason about: each
/// structured parallel region (parallel_for / forall / coforall / spark
/// stage) gets a fresh epoch.  Joins order regions that the *same* task
/// opens one after another, but two regions opened by concurrent sibling
/// tasks run with no join between them — so `begin_parallel_region`
/// additionally records which task opened each nested region
/// (`region_parent`), and detectors compare the resulting ancestor chains:
/// two accesses are concurrent when the chains first diverge *within* one
/// region (sibling tasks), and ordered when they diverge *across* epochs
/// (sequentially-opened regions) or when one task is an ancestor of the
/// other (fork/join suspends the opener).
/// `kSerialEpoch` (0) is code outside any region; `kUnstructuredEpoch`
/// marks raw `ThreadPool::submit` tasks, which carry no join information
/// and therefore race only among themselves.
///
/// The lockset half mirrors the classic Eraser algorithm: `TrackedMutex`
/// registers itself in a thread-local set of held locks, and the race
/// detector declares two conflicting accesses benign when their locksets
/// intersect — so the canonical student fix (a mutex around the shared
/// accumulator) is recognized as correct.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace peachy::analysis {

inline constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);
inline constexpr std::uint64_t kSerialEpoch = 0;
inline constexpr std::uint64_t kUnstructuredEpoch = ~std::uint64_t{0};

/// Identity of the logical task executing on the current thread.
struct TaskIdentity {
  std::size_t worker = kNoWorker;  ///< logical task id within its region
  std::uint64_t epoch = kSerialEpoch;
};

namespace detail {
inline thread_local TaskIdentity tls_task{};
inline thread_local std::vector<const void*> tls_lockset{};
inline std::atomic<std::uint64_t> g_epoch{kSerialEpoch};
// Opening task of every *nested* region (one opened from inside another
// region or from an unstructured task).  Top-level regions are omitted —
// their parent is the serial identity — so the registry stays empty for
// the common flat pattern and grows only with genuinely nested regions.
inline std::mutex g_region_mu;
inline std::unordered_map<std::uint64_t, TaskIdentity> g_region_parent;
}  // namespace detail

[[nodiscard]] inline TaskIdentity current_task() noexcept { return detail::tls_task; }

/// Allocate a fresh epoch for one structured parallel region.  Must be
/// called on the opening task's thread (before dispatching any work) so
/// the region's parent identity is captured correctly.
[[nodiscard]] inline std::uint64_t begin_parallel_region() {
  const std::uint64_t epoch = detail::g_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  const TaskIdentity opener = detail::tls_task;
  if (opener.epoch != kSerialEpoch) {
    const std::lock_guard lock{detail::g_region_mu};
    detail::g_region_parent.emplace(epoch, opener);
  }
  return epoch;
}

/// Identity of the task that opened region `epoch`; the serial identity
/// for top-level regions, unstructured tasks, and unknown epochs.
[[nodiscard]] inline TaskIdentity region_parent(std::uint64_t epoch) {
  const std::lock_guard lock{detail::g_region_mu};
  const auto it = detail::g_region_parent.find(epoch);
  return it == detail::g_region_parent.end() ? TaskIdentity{} : it->second;
}

/// RAII publication of a logical task identity; nests (inner scopes win,
/// e.g. a parallel_for block overriding the pool worker's identity).
class TaskScope {
 public:
  TaskScope(std::size_t worker, std::uint64_t epoch) noexcept : saved_{detail::tls_task} {
    detail::tls_task = TaskIdentity{worker, epoch};
  }
  ~TaskScope() { detail::tls_task = saved_; }
  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

 private:
  TaskIdentity saved_;
};

// ---- lockset tracking -------------------------------------------------------

inline void lockset_acquired(const void* m) { detail::tls_lockset.push_back(m); }

inline void lockset_released(const void* m) noexcept {
  auto& ls = detail::tls_lockset;
  for (auto it = ls.rbegin(); it != ls.rend(); ++it) {
    if (*it == m) {
      ls.erase(std::next(it).base());
      return;
    }
  }
}

/// Locks held by the current thread (registration order).
[[nodiscard]] inline const std::vector<const void*>& current_lockset() noexcept {
  return detail::tls_lockset;
}

/// Drop-in `std::mutex` replacement that reports to the thread's lockset,
/// making critical sections visible to the race detector.  Satisfies the
/// Lockable requirements, so it works with std::lock_guard / scoped_lock.
class TrackedMutex {
 public:
  void lock() {
    mu_.lock();
    lockset_acquired(this);
  }
  void unlock() {
    lockset_released(this);
    mu_.unlock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    lockset_acquired(this);
    return true;
  }

 private:
  std::mutex mu_;
};

}  // namespace peachy::analysis
