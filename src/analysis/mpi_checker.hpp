#pragma once
/// \file mpi_checker.hpp
/// \brief MUST-style correctness checker for the mini-MPI machine.
///
/// Event-driven: `peachy::mpi::detail::Machine` feeds it post / block /
/// unblock / exit / collective events, and the checker maintains
///
///  * a **wait-for graph** of blocked ranks — a rank blocked in
///    `recv(src, tag)` with no satisfying message pending is an edge to
///    `src`; a cycle, a wait on an already-exited rank, or an all-blocked
///    machine is a deadlock, reported with a per-rank
///    "rank 0 blocked in recv(src=2, tag=7)" trace and converted into a
///    machine abort so the run terminates instead of hanging;
///  * the **collective call sequence** of every rank — the i-th collective
///    must agree across ranks on operation, root, and element size (and
///    contribution length where MPI requires it), as the MUST tool checks
///    for real MPI;
///  * **message leaks** — messages still sitting in a mailbox when the
///    program exits cleanly.
///
/// The checker never takes mailbox locks; callers may hold them.  All
/// methods are internally synchronized.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/report.hpp"

namespace peachy::analysis {

/// First tag value reserved for collective-internal messages (mirrored by
/// peachy::mpi::Comm, which lives above this module).
inline constexpr int kMpiInternalTagBase = 1 << 30;

/// Shape signature of one collective call, recorded at entry.
struct CollectiveDesc {
  const char* op;            ///< static name: "barrier", "broadcast", ...
  int root = -1;             ///< -1 for rootless collectives
  std::uint32_t elem_size = 1;
  std::int64_t count = -1;   ///< -1 when unknown or legitimately variable
};

class MpiChecker {
 public:
  MpiChecker(int nranks, CheckLevel level);

  [[nodiscard]] CheckLevel level() const noexcept { return level_; }

  /// A message (source → dest, tag) was placed in dest's mailbox.
  void on_post(int source, int dest, int tag);

  /// A wire transport accepted a frame for asynchronous delivery.  Between
  /// this call and the matching on_wire_delivered() the message exists but
  /// no mailbox holds it, so any deadlock scan that fires in the window
  /// could indict ranks whose satisfying message is merely in flight.
  /// Scans are suppressed while frames are outstanding and re-run at drain.
  void on_wire_send();

  /// The frame reached its destination mailbox (on_post already ran for
  /// it).  If a deadlock scan was suppressed while this frame was in
  /// flight and this was the last outstanding frame, the scan runs now and
  /// its diagnosis (if any) is returned for the caller to act on.
  [[nodiscard]] std::optional<std::string> on_wire_delivered();

  /// `rank` scanned its mailbox, found no match for (source, tag), and is
  /// about to block.  Returns a deadlock diagnosis if registering this
  /// wait completes a deadlock.  A `bounded` wait carries a deadline
  /// (per-call or comm-wide timeout): it is recorded but can never be
  /// part of a deadlock diagnosis, because it completes in bounded time
  /// with TimeoutError and the rank then makes progress (or unwinds).
  [[nodiscard]] std::optional<std::string> on_block(int rank, int source, int tag,
                                                    bool bounded = false);

  /// `rank` received a matching message after having blocked.
  void on_unblock(int rank);

  /// `rank`'s program function returned normally.  Returns a deadlock
  /// diagnosis if the remaining ranks can no longer make progress.
  [[nodiscard]] std::optional<std::string> on_exit(int rank);

  /// `rank` crashed (fault injection or a real fault).  Recorded as a
  /// warning finding — a *recovered* run still grades clean — and the rank
  /// is excluded from deadlock analysis: peers blocked on it are woken by
  /// the machine with RankFailedError, which is a distinct diagnosis from
  /// deadlock (a failure is survivable; a deadlock is a program bug).
  void on_failed(int rank);

  /// `rank` entered its `index`-th collective.  Returns a mismatch
  /// diagnosis if it disagrees with what other ranks called at `index`.
  [[nodiscard]] std::optional<std::string> on_collective(int rank, std::uint64_t index,
                                                         const CollectiveDesc& d);

  /// A message was never received by the time the machine shut down.
  void note_leak(int source, int dest, int tag, std::size_t bytes);

  /// Snapshot of everything diagnosed so far.
  [[nodiscard]] Report report() const;

 private:
  enum class RankState { running, blocked, exited, failed };
  struct RankInfo {
    RankState state = RankState::running;
    int want_src = 0;
    int want_tag = 0;
    bool satisfied = false;  ///< a matching message arrived since blocking
    bool bounded = false;    ///< the wait has a deadline; never deadlocked
  };
  struct CollRecord {
    CollectiveDesc desc;
    int first_rank;
    int participants = 1;  ///< ranks seen at this index; erased at nranks
  };

  [[nodiscard]] std::optional<std::string> detect_deadlock_locked();
  [[nodiscard]] std::string describe_wait_locked(int rank) const;
  [[nodiscard]] std::optional<std::string> fire_deadlock_locked(const std::string& message,
                                                                const std::vector<int>& involved);

  CheckLevel level_;
  mutable std::mutex mu_;
  std::vector<RankInfo> ranks_;
  std::unordered_map<std::uint64_t, CollRecord> colls_;  // by sequence index
  Report report_;
  std::int64_t in_flight_ = 0;   ///< wire frames sent but not yet delivered
  bool scan_pending_ = false;    ///< a scan was suppressed while frames flew
  bool deadlock_fired_ = false;
  std::size_t leaks_reported_ = 0;

  static constexpr std::size_t kMaxLeakFindings = 32;
};

/// Render a tag for humans: user tags print as numbers, internal tags as
/// the collective sequence number they belong to, wildcards as "any".
[[nodiscard]] std::string format_tag(int tag);
[[nodiscard]] std::string format_source(int source);

}  // namespace peachy::analysis
