#include "analysis/report.hpp"

#include <sstream>

namespace peachy::analysis {

std::string_view to_string(FindingKind k) noexcept {
  switch (k) {
    case FindingKind::deadlock: return "deadlock";
    case FindingKind::collective_mismatch: return "collective-mismatch";
    case FindingKind::message_leak: return "message-leak";
    case FindingKind::data_race: return "data-race";
    case FindingKind::rank_failure: return "rank-failure";
    case FindingKind::lint: return "lint";
  }
  return "unknown";
}

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::info: return "info";
    case Severity::warning: return "warning";
    case Severity::error: return "error";
  }
  return "unknown";
}

void Report::add(Finding f) { findings_.push_back(std::move(f)); }

bool Report::clean() const noexcept {
  for (const Finding& f : findings_) {
    if (f.severity == Severity::error) return false;
  }
  return true;
}

std::size_t Report::count(FindingKind k) const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings_) {
    if (f.kind == k) ++n;
  }
  return n;
}

bool Report::mentions(std::string_view needle) const {
  for (const Finding& f : findings_) {
    if (f.message.find(needle) != std::string::npos) return true;
    for (const std::string& d : f.details) {
      if (d.find(needle) != std::string::npos) return true;
    }
  }
  return false;
}

std::string Report::to_string() const {
  if (findings_.empty()) return "analysis: clean (no findings)\n";
  std::ostringstream os;
  for (const Finding& f : findings_) {
    os << '[' << analysis::to_string(f.severity) << "] " << analysis::to_string(f.kind) << ": "
       << f.message << '\n';
    for (const std::string& d : f.details) os << "    " << d << '\n';
  }
  return os.str();
}

}  // namespace peachy::analysis
