#pragma once
/// \file report.hpp
/// \brief Structured findings shared by every peachy correctness checker.
///
/// The analysis layer exists so an instructor can grade *why* a submission
/// misbehaves, not just that it does.  Every checker — the mini-MPI
/// deadlock/collective/leak checker and the lockset race detector — emits
/// its diagnoses as `Finding`s collected in a `Report`: a one-line
/// machine-checkable message plus per-rank / per-access evidence lines.
/// Tests assert on `Report::count()` / `mentions()`; the grading demo
/// prints `Report::to_string()`.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace peachy::analysis {

/// How much checking the mini-MPI machine performs.
///  * `off`      — zero-overhead production path (default).
///  * `deadlock` — wait-for-graph deadlock detection only.
///  * `full`     — deadlock + collective call-order/shape matching +
///                 unreceived-message reporting at exit.
enum class CheckLevel { off, deadlock, full };

enum class FindingKind {
  deadlock,             ///< cycle or all-blocked state in the wait-for graph
  collective_mismatch,  ///< ranks disagree on collective sequence/shape/root
  message_leak,         ///< message still undelivered when run() exited
  data_race,            ///< overlapping unordered accesses, disjoint locksets
  rank_failure,         ///< a rank crashed (fault injection or real fault)
  lint,                 ///< static finding from peachy::lint (source-level)
};

enum class Severity { info, warning, error };

[[nodiscard]] std::string_view to_string(FindingKind k) noexcept;
[[nodiscard]] std::string_view to_string(Severity s) noexcept;

/// One diagnosed defect.
struct Finding {
  FindingKind kind;
  Severity severity = Severity::error;
  std::string message;                ///< one-line diagnosis
  std::vector<std::string> details;   ///< per-rank / per-access evidence
};

/// Ordered collection of findings from one checked execution.
class Report {
 public:
  void add(Finding f);

  /// True when no error-severity finding was recorded.
  [[nodiscard]] bool clean() const noexcept;

  [[nodiscard]] std::size_t count(FindingKind k) const noexcept;

  /// True if any finding's message or detail lines contain `needle`.
  [[nodiscard]] bool mentions(std::string_view needle) const;

  [[nodiscard]] const std::vector<Finding>& findings() const noexcept { return findings_; }

  /// Human-readable rendering, one block per finding.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Finding> findings_;
};

/// Thrown when a checker turns an error finding into a hard failure (e.g.
/// a detected deadlock aborts the machine).  Subclasses peachy::Error so
/// existing catch sites keep working.
class CheckFailure : public peachy::Error {
 public:
  explicit CheckFailure(const std::string& what) : Error(what) {}
};

}  // namespace peachy::analysis
