#include "analysis/mpi_checker.hpp"

#include <cstring>
#include <sstream>

namespace peachy::analysis {

namespace {
// Wildcard values mirrored from peachy::mpi (kAnySource / kAnyTag).
constexpr int kAny = -1;
}  // namespace

std::string format_tag(int tag) {
  if (tag == kAny) return "tag=any";
  if (tag >= kMpiInternalTagBase) {
    return "collective #" + std::to_string(tag - kMpiInternalTagBase);
  }
  return "tag=" + std::to_string(tag);
}

std::string format_source(int source) {
  return source == kAny ? "src=any" : "src=" + std::to_string(source);
}

MpiChecker::MpiChecker(int nranks, CheckLevel level)
    : level_{level}, ranks_(static_cast<std::size_t>(nranks)) {}

void MpiChecker::on_post(int source, int dest, int tag) {
  std::lock_guard lock{mu_};
  RankInfo& d = ranks_[static_cast<std::size_t>(dest)];
  if (d.state != RankState::blocked || d.satisfied) return;
  const bool src_ok = d.want_src == kAny || d.want_src == source;
  const bool tag_ok = d.want_tag == kAny || d.want_tag == tag;
  if (src_ok && tag_ok) d.satisfied = true;
}

void MpiChecker::on_wire_send() {
  std::lock_guard lock{mu_};
  ++in_flight_;
}

std::optional<std::string> MpiChecker::on_wire_delivered() {
  std::lock_guard lock{mu_};
  if (in_flight_ > 0) --in_flight_;
  if (in_flight_ == 0 && scan_pending_) {
    scan_pending_ = false;
    return detect_deadlock_locked();
  }
  return std::nullopt;
}

std::optional<std::string> MpiChecker::on_block(int rank, int source, int tag, bool bounded) {
  std::lock_guard lock{mu_};
  RankInfo& r = ranks_[static_cast<std::size_t>(rank)];
  r.state = RankState::blocked;
  r.want_src = source;
  r.want_tag = tag;
  r.satisfied = false;
  r.bounded = bounded;
  return detect_deadlock_locked();
}

void MpiChecker::on_unblock(int rank) {
  std::lock_guard lock{mu_};
  ranks_[static_cast<std::size_t>(rank)].state = RankState::running;
}

std::optional<std::string> MpiChecker::on_exit(int rank) {
  std::lock_guard lock{mu_};
  ranks_[static_cast<std::size_t>(rank)].state = RankState::exited;
  return detect_deadlock_locked();
}

void MpiChecker::on_failed(int rank) {
  std::lock_guard lock{mu_};
  RankInfo& r = ranks_[static_cast<std::size_t>(rank)];
  if (r.state == RankState::failed) return;
  r.state = RankState::failed;
  report_.add(Finding{FindingKind::rank_failure,
                      Severity::warning,
                      "rank " + std::to_string(rank) + " failed (crashed mid-run)",
                      {}});
  // No deadlock scan here: waits on the failed rank are *not* deadlocks —
  // the machine wakes those waiters with RankFailedError, and survivors
  // may legitimately keep running after shrink().
}

std::string MpiChecker::describe_wait_locked(int rank) const {
  const RankInfo& r = ranks_[static_cast<std::size_t>(rank)];
  std::ostringstream os;
  os << "rank " << rank << " blocked in recv(" << format_source(r.want_src) << ", "
     << format_tag(r.want_tag) << ")";
  return os.str();
}

std::optional<std::string> MpiChecker::fire_deadlock_locked(const std::string& message,
                                                            const std::vector<int>& involved) {
  deadlock_fired_ = true;
  Finding f{FindingKind::deadlock, Severity::error, message, {}};
  for (int r : involved) f.details.push_back(describe_wait_locked(r));
  report_.add(f);
  // The abort reason / exception text carries the kind explicitly; the
  // finding doesn't (Report::to_string already prefixes it).
  return "deadlock: " + message;
}

std::optional<std::string> MpiChecker::detect_deadlock_locked() {
  if (deadlock_fired_) return std::nullopt;
  // With wire frames in flight a "blocked and unsatisfied" rank may be
  // waiting on a message that exists but has not reached its mailbox yet,
  // so any diagnosis would be a guess.  Defer: the scan re-runs when the
  // last outstanding frame is delivered (on_wire_delivered), which must
  // happen in finite time — the pump threads do not block on user code.
  if (in_flight_ > 0) {
    scan_pending_ = true;
    return std::nullopt;
  }
  const int n = static_cast<int>(ranks_.size());
  auto stuck = [&](int r) {
    const RankInfo& ri = ranks_[static_cast<std::size_t>(r)];
    // A bounded wait is never stuck: its deadline fires in finite time,
    // after which the rank runs again (TimeoutError) — so no deadlock
    // can be *proven* while it participates.
    return ri.state == RankState::blocked && !ri.satisfied && !ri.bounded;
  };

  // 1) A rank waiting on a specific source that has already exited can
  //    never be satisfied (the source's sends were all posted before it
  //    exited, and none matched when the wait registered).  Out-of-range
  //    sources (Machine::take rejects them, but direct event feeds may
  //    not) are skipped rather than indexed.
  for (int r = 0; r < n; ++r) {
    if (!stuck(r)) continue;
    const int src = ranks_[static_cast<std::size_t>(r)].want_src;
    if (src >= n) continue;
    if (src >= 0 && ranks_[static_cast<std::size_t>(src)].state == RankState::exited) {
      std::ostringstream os;
      os << describe_wait_locked(r) << ", but rank " << src
         << " has already finished and will send nothing more";
      return fire_deadlock_locked(os.str(), {r});
    }
  }

  // 2) Cycle of specific-source waits: r0 waits on r1 waits on ... on r0.
  std::vector<int> color(static_cast<std::size_t>(n), 0);  // 0 new, 1 on path, 2 done
  for (int s = 0; s < n; ++s) {
    if (!stuck(s) || color[static_cast<std::size_t>(s)] != 0) continue;
    std::vector<int> path;
    int cur = s;
    while (cur >= 0 && cur < n && stuck(cur) && color[static_cast<std::size_t>(cur)] == 0) {
      color[static_cast<std::size_t>(cur)] = 1;
      path.push_back(cur);
      cur = ranks_[static_cast<std::size_t>(cur)].want_src;  // kAny (-1) ends the walk
    }
    if (cur >= 0 && cur < n && color[static_cast<std::size_t>(cur)] == 1) {
      std::vector<int> cycle;
      bool in_cycle = false;
      for (int r : path) {
        if (r == cur) in_cycle = true;
        if (in_cycle) cycle.push_back(r);
      }
      std::ostringstream os;
      os << "cyclic recv dependency among ranks {";
      for (std::size_t i = 0; i < cycle.size(); ++i) os << (i ? ", " : "") << cycle[i];
      os << "}";
      return fire_deadlock_locked(os.str(), cycle);
    }
    for (int r : path) color[static_cast<std::size_t>(r)] = 2;
  }

  // 3) Whole-machine deadlock: every rank has exited or is stuck (covers
  //    wildcard receives, which have edges to every live rank).  Not
  //    applicable once any rank has *failed*: stuck ranks whose wait
  //    involves the failed rank (directly or via wildcard) are woken by
  //    the machine with RankFailedError — that is a failure to recover
  //    from, not a deadlock to diagnose.
  int nstuck = 0, nexited = 0, nfailed = 0;
  for (int r = 0; r < n; ++r) {
    if (stuck(r)) ++nstuck;
    if (ranks_[static_cast<std::size_t>(r)].state == RankState::exited) ++nexited;
    if (ranks_[static_cast<std::size_t>(r)].state == RankState::failed) ++nfailed;
  }
  if (nfailed == 0 && nstuck > 0 && nstuck + nexited == n) {
    std::vector<int> involved;
    for (int r = 0; r < n; ++r) {
      if (stuck(r)) involved.push_back(r);
    }
    std::ostringstream os;
    os << "all " << nstuck << " still-running rank(s) are blocked in recv and no "
       << "message can arrive";
    return fire_deadlock_locked(os.str(), involved);
  }
  return std::nullopt;
}

namespace {
std::string describe_collective(const CollectiveDesc& d) {
  std::ostringstream os;
  os << d.op << "(";
  bool comma = false;
  if (d.root >= 0) {
    os << "root=" << d.root;
    comma = true;
  }
  os << (comma ? ", " : "") << "elem=" << d.elem_size << "B";
  if (d.count >= 0) os << ", count=" << d.count;
  os << ")";
  return os.str();
}
}  // namespace

std::optional<std::string> MpiChecker::on_collective(int rank, std::uint64_t index,
                                                     const CollectiveDesc& d) {
  if (level_ != CheckLevel::full) return std::nullopt;
  std::lock_guard lock{mu_};
  const int nranks = static_cast<int>(ranks_.size());
  const auto [it, inserted] = colls_.try_emplace(index, CollRecord{d, rank});
  if (inserted) {
    if (nranks == 1) colls_.erase(it);
    return std::nullopt;
  }
  const CollRecord& ref = it->second;
  std::string why;
  if (std::strcmp(ref.desc.op, d.op) != 0) {
    why = "operation differs";
  } else if (ref.desc.root != d.root) {
    why = "root differs";
  } else if (ref.desc.elem_size != d.elem_size) {
    why = "element size differs";
  } else if (ref.desc.count >= 0 && d.count >= 0 && ref.desc.count != d.count) {
    why = "contribution length differs";
  } else {
    // All nranks checked in cleanly: the record can never mismatch again,
    // so drop it — colls_ stays bounded by the number of *in-flight*
    // collectives, not the run's total (the tag space allows 2^30).
    if (++it->second.participants == nranks) colls_.erase(it);
    return std::nullopt;
  }
  std::ostringstream os;
  os << "collective mismatch at position " << index << " (" << why << "): rank " << ref.first_rank
     << " called " << describe_collective(ref.desc) << " but rank " << rank << " called "
     << describe_collective(d);
  report_.add(Finding{FindingKind::collective_mismatch,
                      Severity::error,
                      os.str(),
                      {"rank " + std::to_string(ref.first_rank) + ": " +
                           describe_collective(ref.desc),
                       "rank " + std::to_string(rank) + ": " + describe_collective(d)}});
  return os.str();
}

void MpiChecker::note_leak(int source, int dest, int tag, std::size_t bytes) {
  if (level_ != CheckLevel::full) return;
  std::lock_guard lock{mu_};
  ++leaks_reported_;
  if (leaks_reported_ > kMaxLeakFindings) return;
  const bool internal = tag >= kMpiInternalTagBase;
  std::ostringstream os;
  os << "message from rank " << source << " to rank " << dest << " (" << format_tag(tag) << ", "
     << bytes << " bytes) was never received";
  if (internal) os << " [collective-internal: protocol bug]";
  report_.add(Finding{FindingKind::message_leak,
                      internal ? Severity::warning : Severity::error, os.str(), {}});
}

Report MpiChecker::report() const {
  std::lock_guard lock{mu_};
  Report rep = report_;
  if (leaks_reported_ > kMaxLeakFindings) {
    rep.add(Finding{FindingKind::message_leak, Severity::info,
                    std::to_string(leaks_reported_ - kMaxLeakFindings) +
                        " further leaked message(s) suppressed",
                    {}});
  }
  return rep;
}

}  // namespace peachy::analysis
