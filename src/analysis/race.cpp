#include "analysis/race.hpp"

#include <algorithm>
#include <sstream>

namespace peachy::analysis {

RaceDetector::RaceDetector(std::string array_name) : name_{std::move(array_name)} {}

void RaceDetector::record_read(std::size_t lo, std::size_t hi) { record(false, lo, hi); }
void RaceDetector::record_write(std::size_t lo, std::size_t hi) { record(true, lo, hi); }

void RaceDetector::record(bool write, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return;
  const TaskIdentity id = current_task();
  const auto& locks = current_lockset();
  std::lock_guard lock{mu_};
  if (log_.size() >= kMaxLog) {
    ++dropped_;
    return;
  }
  log_.push_back(Access{id.epoch, id.worker, lo, hi, write, locks});
}

void RaceDetector::reset() {
  std::lock_guard lock{mu_};
  log_.clear();
  dropped_ = 0;
}

std::uint64_t RaceDetector::recorded() const {
  std::lock_guard lock{mu_};
  return log_.size();
}

std::uint64_t RaceDetector::dropped() const {
  std::lock_guard lock{mu_};
  return dropped_;
}

bool RaceDetector::conflict(const Access& a, const Access& b) noexcept {
  if (a.epoch != b.epoch) return false;       // separated by a region join
  if (a.worker == b.worker) return false;     // program order within a task
  if (!a.write && !b.write) return false;     // read/read is fine
  if (a.lo >= b.hi || b.lo >= a.hi) return false;  // disjoint ranges
  for (const void* la : a.locks) {            // Eraser rule: common lock?
    for (const void* lb : b.locks) {
      if (la == lb) return false;
    }
  }
  return true;
}

Finding RaceDetector::make_finding(const Access& a, const Access& b) const {
  const Access& first = a.worker < b.worker ? a : b;
  const Access& second = a.worker < b.worker ? b : a;
  auto describe = [](const Access& x) {
    std::ostringstream os;
    os << "worker " << x.worker << ' ' << (x.write ? "wrote" : "read") << " [" << x.lo << ", "
       << x.hi << ')';
    if (x.locks.empty()) {
      os << " holding no lock";
    } else {
      os << " holding " << x.locks.size() << " lock(s)";
    }
    return os.str();
  };
  std::ostringstream msg;
  msg << "data race on '" << name_ << "': worker " << first.worker << " and worker "
      << second.worker << " access overlapping range [" << std::max(first.lo, second.lo) << ", "
      << std::min(first.hi, second.hi) << ") in the same parallel region (epoch " << first.epoch
      << ") with no common lock";
  return Finding{FindingKind::data_race, Severity::error, msg.str(),
                 {describe(first), describe(second)}};
}

Report RaceDetector::report() const {
  std::lock_guard lock{mu_};
  Report rep;

  // Sweep: sort by (epoch, lo) and compare each access against the still-
  // open intervals of its epoch.  For disjoint access patterns the active
  // set stays tiny, so clean programs are analysed in ~n log n.
  std::vector<const Access*> order;
  order.reserve(log_.size());
  for (const Access& a : log_) order.push_back(&a);
  std::sort(order.begin(), order.end(), [](const Access* a, const Access* b) {
    if (a->epoch != b->epoch) return a->epoch < b->epoch;
    if (a->lo != b->lo) return a->lo < b->lo;
    return a->hi < b->hi;
  });

  std::vector<const Access*> active;
  std::uint64_t active_epoch = kSerialEpoch;
  std::size_t conflicts = 0;
  bool truncated = false;
  for (const Access* a : order) {
    if (a->epoch != active_epoch) {
      active.clear();
      active_epoch = a->epoch;
    }
    std::erase_if(active, [&](const Access* b) { return b->hi <= a->lo; });
    for (const Access* b : active) {
      if (!conflict(*a, *b)) continue;
      if (conflicts < kMaxFindings) {
        rep.add(make_finding(*a, *b));
      } else {
        truncated = true;
      }
      ++conflicts;
    }
    if (truncated) break;  // enough evidence; stop the quadratic blow-up
    active.push_back(a);
  }

  if (truncated) {
    rep.add(Finding{FindingKind::data_race, Severity::info,
                    "analysis truncated after " + std::to_string(kMaxFindings) +
                        " conflicting pairs on '" + name_ + "' (more exist)",
                    {}});
  }
  if (dropped_ > 0) {
    rep.add(Finding{FindingKind::data_race, Severity::warning,
                    "access log for '" + name_ + "' overflowed; " + std::to_string(dropped_) +
                        " accesses were not analysed",
                    {}});
  }
  return rep;
}

}  // namespace peachy::analysis
