#include "analysis/race.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace peachy::analysis {

RaceDetector::RaceDetector(std::string array_name) : name_{std::move(array_name)} {}

void RaceDetector::record_read(std::size_t lo, std::size_t hi) { record(false, lo, hi); }
void RaceDetector::record_write(std::size_t lo, std::size_t hi) { record(true, lo, hi); }

void RaceDetector::record(bool write, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return;
  const TaskIdentity id = current_task();
  const auto& locks = current_lockset();
  std::lock_guard lock{mu_};
  if (log_.size() >= kMaxLog) {
    ++dropped_;
    return;
  }
  log_.push_back(Access{id.epoch, id.worker, lo, hi, write, locks});
}

void RaceDetector::reset() {
  std::lock_guard lock{mu_};
  log_.clear();
  dropped_ = 0;
}

std::uint64_t RaceDetector::recorded() const {
  std::lock_guard lock{mu_};
  return log_.size();
}

std::uint64_t RaceDetector::dropped() const {
  std::lock_guard lock{mu_};
  return dropped_;
}

bool RaceDetector::concurrent(const std::vector<TaskIdentity>& aa, const Access& a,
                              const std::vector<TaskIdentity>& ab,
                              const Access& b) noexcept {
  // Each access's chain is its epoch's region ancestors (outermost first)
  // plus its own (worker, epoch) leaf.  Walking the two chains from the
  // root, the first divergence decides the ordering:
  //  * different workers in the same region — sibling tasks, nothing below
  //    this point is joined, so the accesses are concurrent;
  //  * different epochs under the same task — the task opened the regions
  //    one after another, and the join of the first ordered them;
  //  * one chain a prefix of the other — the shorter chain's task opened
  //    (transitively) the longer one's region and is suspended across it.
  const auto at = [](const std::vector<TaskIdentity>& anc, const Access& x, std::size_t i) {
    return i < anc.size() ? anc[i] : TaskIdentity{x.worker, x.epoch};
  };
  const std::size_t n = std::min(aa.size(), ab.size()) + 1;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskIdentity ta = at(aa, a, i);
    const TaskIdentity tb = at(ab, b, i);
    if (ta.epoch != tb.epoch) return false;
    if (ta.worker != tb.worker) return true;
  }
  return false;
}

bool RaceDetector::conflict(const std::vector<TaskIdentity>& aa, const Access& a,
                            const std::vector<TaskIdentity>& ab, const Access& b) noexcept {
  if (!a.write && !b.write) return false;          // read/read is fine
  if (a.lo >= b.hi || b.lo >= a.hi) return false;  // disjoint ranges
  if (!concurrent(aa, a, ab, b)) return false;     // fork-join ordered
  for (const void* la : a.locks) {                 // Eraser rule: common lock?
    for (const void* lb : b.locks) {
      if (la == lb) return false;
    }
  }
  return true;
}

Finding RaceDetector::make_finding(const Access& a, const Access& b) const {
  const bool a_first = a.epoch != b.epoch ? a.epoch < b.epoch : a.worker < b.worker;
  const Access& first = a_first ? a : b;
  const Access& second = a_first ? b : a;
  const bool same_region = first.epoch == second.epoch;
  auto describe = [same_region](const Access& x) {
    std::ostringstream os;
    os << "worker " << x.worker;
    if (!same_region) os << " (epoch " << x.epoch << ')';
    os << ' ' << (x.write ? "wrote" : "read") << " [" << x.lo << ", " << x.hi << ')';
    if (x.locks.empty()) {
      os << " holding no lock";
    } else {
      os << " holding " << x.locks.size() << " lock(s)";
    }
    return os.str();
  };
  std::ostringstream msg;
  msg << "data race on '" << name_ << "': worker " << first.worker << " and worker "
      << second.worker << " access overlapping range [" << std::max(first.lo, second.lo) << ", "
      << std::min(first.hi, second.hi) << ") ";
  if (same_region) {
    msg << "in the same parallel region (epoch " << first.epoch << ")";
  } else {
    msg << "in concurrent nested parallel regions (epochs " << first.epoch << " and "
        << second.epoch << ")";
  }
  msg << " with no common lock";
  return Finding{FindingKind::data_race, Severity::error, msg.str(),
                 {describe(first), describe(second)}};
}

Report RaceDetector::report() const {
  std::lock_guard lock{mu_};
  Report rep;

  // Resolve each epoch's region-ancestor chain once (outermost first,
  // excluding the access's own leaf identity).  The chain is empty for
  // top-level regions, unstructured tasks, and serial code; it is non-
  // empty only for nested regions, whose openers begin_parallel_region
  // recorded.
  std::unordered_map<std::uint64_t, std::vector<TaskIdentity>> ancestors;
  for (const Access& a : log_) {
    if (ancestors.contains(a.epoch)) continue;
    std::vector<TaskIdentity>& chain = ancestors[a.epoch];
    for (TaskIdentity p = region_parent(a.epoch); p.epoch != kSerialEpoch;
         p = region_parent(p.epoch)) {
      chain.push_back(p);
    }
    std::reverse(chain.begin(), chain.end());
  }

  // Sweep: sort by lo and compare each access against the still-open
  // intervals.  Accesses of *different* epochs stay in one sweep because
  // sibling nested regions can race across epochs; conflict() sorts out
  // the fork-join ordering.  For disjoint access patterns the active set
  // stays tiny, so clean programs are analysed in ~n log n.
  std::vector<const Access*> order;
  order.reserve(log_.size());
  for (const Access& a : log_) order.push_back(&a);
  std::sort(order.begin(), order.end(), [](const Access* a, const Access* b) {
    if (a->lo != b->lo) return a->lo < b->lo;
    return a->hi < b->hi;
  });

  std::vector<const Access*> active;
  std::size_t conflicts = 0;
  bool truncated = false;
  for (const Access* a : order) {
    std::erase_if(active, [&](const Access* b) { return b->hi <= a->lo; });
    for (const Access* b : active) {
      if (!conflict(ancestors.at(a->epoch), *a, ancestors.at(b->epoch), *b)) continue;
      if (conflicts < kMaxFindings) {
        rep.add(make_finding(*a, *b));
      } else {
        truncated = true;
      }
      ++conflicts;
    }
    if (truncated) break;  // enough evidence; stop the quadratic blow-up
    active.push_back(a);
  }

  if (truncated) {
    rep.add(Finding{FindingKind::data_race, Severity::info,
                    "analysis truncated after " + std::to_string(kMaxFindings) +
                        " conflicting pairs on '" + name_ + "' (more exist)",
                    {}});
  }
  if (dropped_ > 0) {
    rep.add(Finding{FindingKind::data_race, Severity::warning,
                    "access log for '" + name_ + "' overflowed; " + std::to_string(dropped_) +
                        " accesses were not analysed",
                    {}});
  }
  return rep;
}

}  // namespace peachy::analysis
