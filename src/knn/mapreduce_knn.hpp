#pragma once
/// \file mapreduce_knn.hpp
/// \brief The assignment itself: kNN on MapReduce-MPI (paper §2).
///
/// "In a typical implementation, all processes load the query set since it
/// is assumed not to be large.  Then the database file is parsed in
/// parallel by multiple map tasks which compute distances and generate
/// (key: query, value: (distance, class)) pairs.  Then a reduction phase
/// takes the pairs for each query, extracts the nearest neighbors'
/// classes, and generates (key: query, value: predicted_class) pairs."
///
/// Emission modes reproduce the paper's communication-cost discussion:
///  * kAllPairs     — the naive student solution: one pair per
///                    (query, database point) — Θ(nq) shuffled pairs;
///  * kTopKPerTask  — each map task pre-selects its chunk's k nearest per
///                    query (a local reduction at task level);
/// and `local_combine` additionally merges each *rank's* pairs down to k
/// per query before the shuffle ("local reductions at each rank ...
/// noticeably improves the communication cost").

#include <cstdint>
#include <vector>

#include "data/points.hpp"
#include "mapreduce/mapreduce.hpp"
#include "mpi/mpi.hpp"

namespace peachy::knn {

/// How map tasks emit candidate neighbors.
enum class EmitMode { kAllPairs, kTopKPerTask };

/// Options for the distributed classifier.
struct MrKnnOptions {
  std::size_t k = 5;
  std::size_t map_tasks = 8;          ///< database chunks mapped in parallel
  EmitMode emit = EmitMode::kTopKPerTask;
  bool local_combine = false;         ///< rank-level pre-reduction before shuffle
};

/// Telemetry from one distributed classification.
struct MrKnnStats {
  std::uint64_t pairs_shuffled = 0;   ///< pairs entering the shuffle (global)
  std::uint64_t bytes_shuffled = 0;   ///< serialized bytes crossing ranks
  std::uint64_t messages = 0;         ///< mini-MPI messages for the whole job
};

/// Classify `queries` against `db` using MapReduce over `comm`.
///
/// Every rank is assumed to hold `db` and `queries` (the paper's "all
/// processes load the query set"; the database would be parsed in
/// parallel from storage — here each map task reads its chunk of the
/// in-memory database, exercising the same access pattern).
///
/// Returns the predicted label per query *on every rank* (result is
/// broadcast), bit-identical to the serial heap classifier.
///
/// `stats`, if non-null, is filled by the calling rank — pass a
/// rank-local object, never one shared across rank lambdas (data race).
[[nodiscard]] std::vector<std::int32_t> mapreduce_classify(mpi::Comm& comm,
                                                           const data::LabeledPoints& db,
                                                           const data::PointSet& queries,
                                                           const MrKnnOptions& opts,
                                                           MrKnnStats* stats = nullptr);

}  // namespace peachy::knn
