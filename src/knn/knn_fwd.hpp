#pragma once
/// \file knn_fwd.hpp
/// \brief Shared kNN value types (used by both the brute-force strategies
/// and the k-d tree without a circular include).

#include <cstdint>

namespace peachy::knn {

/// One retrieved neighbor.
struct Neighbor {
  double dist2 = 0.0;       ///< squared Euclidean distance
  std::uint32_t index = 0;  ///< database row
  std::int32_t label = -1;  ///< database class

  /// Ordering for deterministic results: by distance, then index.
  friend bool operator<(const Neighbor& a, const Neighbor& b) noexcept {
    return a.dist2 != b.dist2 ? a.dist2 < b.dist2 : a.index < b.index;
  }
  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace peachy::knn
