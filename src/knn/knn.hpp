#pragma once
/// \file knn.hpp
/// \brief k-Nearest-Neighbor classification (paper §2).
///
/// The assignment's computational core: for each of q query points find
/// the k database points closest in d-dimensional Euclidean space and
/// vote.  The paper's complexity discussion is reproduced as selectable
/// strategies:
///
///  * kSort — collect all n distances and sort: Θ(n log n) per query;
///  * kHeap — bounded max-heap of size k: Θ(n log k) per query (the
///    CLRS-based implementation the paper references);
///  * kKdTree — space-partitioning tree with branch-and-bound pruning
///    (the paper's "Data Structures" adaptation).
///
/// `classify` runs the query loop serially or across a thread pool (the
/// "adapt to shared memory programming models like OpenMP" variant); the
/// MapReduce-MPI version lives in mapreduce_knn.hpp.

#include <cstdint>
#include <span>
#include <vector>

#include "data/points.hpp"
#include "knn/knn_fwd.hpp"
#include "support/thread_pool.hpp"

namespace peachy::knn {

/// Neighbor-selection strategy.
enum class Selection { kSort, kHeap, kKdTree };

/// k nearest database points to `query`, nearest first, using full sort.
[[nodiscard]] std::vector<Neighbor> query_sort(const data::LabeledPoints& db,
                                               std::span<const double> query, std::size_t k);

/// Same result via a bounded max-heap — Θ(n log k).
[[nodiscard]] std::vector<Neighbor> query_heap(const data::LabeledPoints& db,
                                               std::span<const double> query, std::size_t k);

/// Majority vote over neighbors (they need not be sorted).  Ties break
/// toward the class of the nearest tied member, then the smaller label —
/// deterministic across strategies and rank counts.
[[nodiscard]] std::int32_t majority_vote(std::span<const Neighbor> neighbors);

/// Options for batch classification.
struct ClassifyOptions {
  std::size_t k = 5;
  Selection selection = Selection::kHeap;
  std::size_t threads = 1;  ///< >1 parallelizes the query loop on a pool
};

/// Telemetry for the complexity experiments.
struct ClassifyStats {
  std::uint64_t distance_evals = 0;  ///< full-distance computations
  double seconds = 0.0;
};

/// Classify every row of `queries`; returns predicted labels.  With
/// opts.threads > 1 the query loop runs on `pool` with a static schedule
/// (results are identical to serial for any thread count).
[[nodiscard]] std::vector<std::int32_t> classify(const data::LabeledPoints& db,
                                                 const data::PointSet& queries,
                                                 const ClassifyOptions& opts,
                                                 support::ThreadPool* pool = nullptr,
                                                 ClassifyStats* stats = nullptr);

/// Fraction of predictions equal to truth.
[[nodiscard]] double accuracy(std::span<const std::int32_t> predicted,
                              std::span<const std::int32_t> truth);

}  // namespace peachy::knn
