#include "knn/knn.hpp"

#include <algorithm>
#include <map>

#include "kernels/kernels.hpp"
#include "knn/kdtree.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"
#include "support/timer.hpp"

namespace peachy::knn {

namespace {

void validate(const data::LabeledPoints& db, std::span<const double> query, std::size_t k) {
  PEACHY_CHECK(db.size() > 0, "knn: empty database");
  PEACHY_CHECK(db.labels.size() == db.size(), "knn: labels/points size mismatch");
  PEACHY_CHECK(query.size() == db.dims(), "knn: query dimension mismatch");
  PEACHY_CHECK(k >= 1, "knn: k must be at least 1");
}

}  // namespace

std::vector<Neighbor> query_sort(const data::LabeledPoints& db, std::span<const double> query,
                                 std::size_t k) {
  validate(db, query, k);
  // Batch all n distances through the rows kernel, then attach labels.
  std::vector<double> d2(db.size());
  kernels::squared_distances_rows(db.points.values().data(), db.size(), db.dims(),
                                  query.data(), d2.data());
  std::vector<Neighbor> all(db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    all[i] = {d2[i], static_cast<std::uint32_t>(i), db.labels[i]};
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min(k, all.size()));
  return all;
}

std::vector<Neighbor> query_heap(const data::LabeledPoints& db, std::span<const double> query,
                                 std::size_t k) {
  validate(db, query, k);
  // Max-heap of the best k so far: the root is the worst of the best, so
  // a new candidate replaces it in O(log k).  Distances are computed a
  // chunk at a time through the rows kernel so the heap bookkeeping
  // stays interleaved with vectorized batches.
  constexpr std::size_t kChunk = 256;
  std::vector<double> d2(std::min<std::size_t>(kChunk, db.size()));
  std::vector<Neighbor> heap;
  heap.reserve(k);
  for (std::size_t base = 0; base < db.size(); base += kChunk) {
    const std::size_t len = std::min(kChunk, db.size() - base);
    kernels::squared_distances_rows(db.points.values().data() + base * db.dims(), len,
                                    db.dims(), query.data(), d2.data());
    for (std::size_t r = 0; r < len; ++r) {
      const std::size_t i = base + r;
      const Neighbor cand{d2[r], static_cast<std::uint32_t>(i), db.labels[i]};
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end());
      } else if (cand < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end());
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

std::int32_t majority_vote(std::span<const Neighbor> neighbors) {
  PEACHY_CHECK(!neighbors.empty(), "majority_vote: no neighbors");
  struct Tally {
    std::size_t count = 0;
    Neighbor nearest{1e308, 0, -1};
  };
  std::map<std::int32_t, Tally> tallies;
  for (const Neighbor& nb : neighbors) {
    Tally& t = tallies[nb.label];
    ++t.count;
    if (nb < t.nearest) t.nearest = nb;
  }
  const Tally* best = nullptr;
  std::int32_t best_label = -1;
  for (const auto& [label, t] : tallies) {
    const bool wins = best == nullptr || t.count > best->count ||
                      (t.count == best->count && t.nearest < best->nearest);
    if (wins) {
      best = &t;
      best_label = label;
    }
  }
  return best_label;
}

std::vector<std::int32_t> classify(const data::LabeledPoints& db, const data::PointSet& queries,
                                   const ClassifyOptions& opts, support::ThreadPool* pool,
                                   ClassifyStats* stats) {
  PEACHY_CHECK(queries.dims() == db.dims(), "classify: query dimension mismatch");
  PEACHY_CHECK(opts.threads >= 1, "classify: threads must be at least 1");
  PEACHY_CHECK(opts.threads == 1 || pool != nullptr,
               "classify: a thread pool is required for threads > 1");

  support::Stopwatch sw;
  std::vector<std::int32_t> out(queries.size(), -1);

  // Tree strategies build their index once, then share it across queries.
  std::unique_ptr<KdTree> tree;
  if (opts.selection == Selection::kKdTree) tree = std::make_unique<KdTree>(db);

  const auto classify_one = [&](std::size_t qi) {
    std::vector<Neighbor> nbs;
    switch (opts.selection) {
      case Selection::kSort:
        nbs = query_sort(db, queries.point(qi), opts.k);
        break;
      case Selection::kHeap:
        nbs = query_heap(db, queries.point(qi), opts.k);
        break;
      case Selection::kKdTree:
        nbs = tree->query(queries.point(qi), opts.k);
        break;
    }
    out[qi] = majority_vote(nbs);
  };

  if (opts.threads == 1) {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) classify_one(qi);
  } else {
    support::parallel_for_threads(*pool, queries.size(), opts.threads,
                                  [&](std::size_t, std::size_t lo, std::size_t hi) {
                                    for (std::size_t qi = lo; qi < hi; ++qi) classify_one(qi);
                                  });
  }

  if (stats != nullptr) {
    stats->seconds = sw.elapsed_s();
    stats->distance_evals = opts.selection == Selection::kKdTree
                                ? tree->distance_evals()
                                : static_cast<std::uint64_t>(db.size()) * queries.size();
  }
  return out;
}

double accuracy(std::span<const std::int32_t> predicted, std::span<const std::int32_t> truth) {
  PEACHY_CHECK(predicted.size() == truth.size() && !predicted.empty(),
               "accuracy: size mismatch or empty input");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) hits += predicted[i] == truth[i];
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

}  // namespace peachy::knn
