#include "knn/mapreduce_knn.hpp"

#include <algorithm>
#include <cstdio>

#include "knn/knn.hpp"
#include "support/check.hpp"
#include "support/parallel_for.hpp"

namespace peachy::knn {

namespace {

/// Value payload of a candidate pair.
struct Candidate {
  double dist2;
  std::uint32_t index;
  std::int32_t label;
};

/// Fixed-width query key so lexicographic ordering equals numeric ordering
/// (gather returns key-sorted pairs).
std::string query_key(std::size_t qi) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "q%010zu", qi);
  return buf;
}

Neighbor to_neighbor(const Candidate& c) { return {c.dist2, c.index, c.label}; }

/// Keep the k best candidates of a value list (by (dist2, index)).
void keep_k_best(std::vector<Neighbor>& nbs, std::size_t k) {
  std::sort(nbs.begin(), nbs.end());
  if (nbs.size() > k) nbs.resize(k);
}

}  // namespace

std::vector<std::int32_t> mapreduce_classify(mpi::Comm& comm, const data::LabeledPoints& db,
                                             const data::PointSet& queries,
                                             const MrKnnOptions& opts, MrKnnStats* stats) {
  PEACHY_CHECK(opts.k >= 1, "mr-knn: k must be at least 1");
  PEACHY_CHECK(opts.map_tasks >= 1, "mr-knn: need at least one map task");
  PEACHY_CHECK(db.size() > 0, "mr-knn: empty database");
  PEACHY_CHECK(queries.dims() == db.dims(), "mr-knn: dimension mismatch");

  mapreduce::MapReduce mr{comm};

  // Map: each task owns a chunk of the database and emits candidate
  // neighbors for every query.
  mr.map(opts.map_tasks, [&](std::size_t task, mapreduce::KvEmitter& out) {
    const auto chunk = support::static_block(db.size(), opts.map_tasks, task);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto q = queries.point(qi);
      if (opts.emit == EmitMode::kAllPairs) {
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          out.emit_record(query_key(qi),
                          Candidate{db.points.squared_distance(i, q),
                                    static_cast<std::uint32_t>(i), db.labels[i]});
        }
      } else {
        // Local reduction at task level: only the chunk's k best leave.
        std::vector<Neighbor> best;
        best.reserve(opts.k + 1);
        for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
          const Neighbor cand{db.points.squared_distance(i, q),
                              static_cast<std::uint32_t>(i), db.labels[i]};
          if (best.size() < opts.k) {
            best.push_back(cand);
            std::push_heap(best.begin(), best.end());
          } else if (cand < best.front()) {
            std::pop_heap(best.begin(), best.end());
            best.back() = cand;
            std::push_heap(best.begin(), best.end());
          }
        }
        for (const Neighbor& nb : best) {
          out.emit_record(query_key(qi), Candidate{nb.dist2, nb.index, nb.label});
        }
      }
    }
  });

  // Optional rank-level local reduction before the shuffle.
  if (opts.local_combine) {
    mr.combine([&](const std::string& key, std::span<const std::string> values,
                   mapreduce::KvEmitter& out) {
      std::vector<Neighbor> nbs;
      nbs.reserve(values.size());
      for (const auto& v : values) nbs.push_back(to_neighbor(mapreduce::unpack_record<Candidate>(v)));
      keep_k_best(nbs, opts.k);
      for (const Neighbor& nb : nbs) {
        out.emit_record(key, Candidate{nb.dist2, nb.index, nb.label});
      }
    });
  }

  mr.collate();

  // Reduce: global k nearest per query, majority vote.
  mr.reduce([&](const std::string& key, std::span<const std::string> values,
                mapreduce::KvEmitter& out) {
    std::vector<Neighbor> nbs;
    nbs.reserve(values.size());
    for (const auto& v : values) nbs.push_back(to_neighbor(mapreduce::unpack_record<Candidate>(v)));
    keep_k_best(nbs, opts.k);
    out.emit_record<std::int32_t>(key, majority_vote(nbs));
  });

  if (stats != nullptr) {
    stats->pairs_shuffled = mr.shuffle_stats().pairs_before;
    stats->bytes_shuffled = mr.shuffle_stats().bytes_sent;
    stats->messages = comm.traffic().messages;
  }

  // Gather predictions at root.  gather() sorts within each rank only, so
  // sort globally by the fixed-width query key to recover query order.
  auto pairs = mr.gather(0);
  std::vector<std::int32_t> labels;
  if (comm.rank() == 0) {
    PEACHY_CHECK(pairs.size() == queries.size(), "mr-knn: missing query predictions");
    std::sort(pairs.begin(), pairs.end());
    labels.reserve(pairs.size());
    for (const auto& kv : pairs) labels.push_back(mapreduce::unpack_record<std::int32_t>(kv.value));
  }
  comm.broadcast(labels, 0);
  return labels;
}

}  // namespace peachy::knn
