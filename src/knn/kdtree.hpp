#pragma once
/// \file kdtree.hpp
/// \brief k-d tree accelerated nearest-neighbor search (paper §2's "Data
/// Structures" adaptation).
///
/// "These can accelerate spatial search; for a 'box' of the search space,
/// compute a lower bound on the distance from its points to a query point
/// and decide whether to examine any point in the box."  The tree splits
/// on the widest dimension at the median; queries do branch-and-bound
/// descent, pruning any subtree whose bounding box cannot beat the current
/// k-th best distance.  A distance-evaluation counter demonstrates the
/// pruning against the brute-force Θ(nq) baseline.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "data/points.hpp"
#include "knn/knn_fwd.hpp"
#include "support/thread_pool.hpp"

namespace peachy::knn {

/// Immutable k-d tree over a labelled database.
class KdTree {
 public:
  /// Build over `db` (copies indices, references point storage).
  /// `leaf_size` controls when recursion stops.
  ///
  /// With a non-null `pool`, the build itself is parallel — the paper's
  /// "more challenging" Data Structures extension ("More challenging
  /// would be to build the tree in parallel"): the top of the tree is
  /// split sequentially down to ~2×threads subranges, whose subtrees are
  /// then constructed concurrently and merged.  Query results are
  /// identical to the sequential build.
  explicit KdTree(const data::LabeledPoints& db, std::size_t leaf_size = 16,
                  support::ThreadPool* pool = nullptr);

  /// k nearest neighbors of `query`, nearest first.  Identical results to
  /// the brute-force strategies (including the distance/index ordering).
  [[nodiscard]] std::vector<Neighbor> query(std::span<const double> query, std::size_t k) const;

  /// Total full-distance evaluations across all queries so far.
  [[nodiscard]] std::uint64_t distance_evals() const noexcept {
    return distance_evals_.load(std::memory_order_relaxed);
  }

  /// Number of tree nodes (telemetry / tests).
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    // Bounding box of the points below this node.
    std::vector<double> box_min;
    std::vector<double> box_max;
    std::int32_t left = -1;    // child node ids; -1 for leaf
    std::int32_t right = -1;
    std::uint32_t begin = 0;   // range into order_ for leaves
    std::uint32_t end = 0;
  };

  /// Compute a node's bounding box over order_[begin,end) and, if the
  /// range is splittable, partition it at the median of the widest
  /// dimension.  Returns true (and sets `mid`) when split.
  bool try_split(std::uint32_t begin, std::uint32_t end, std::size_t leaf_size, Node& node,
                 std::uint32_t& mid);

  /// Sequential subtree build into `out`; returns the local root id.
  std::int32_t build_into(std::vector<Node>& out, std::uint32_t begin, std::uint32_t end,
                          std::size_t leaf_size);

  /// Parallel whole-tree build (see constructor doc).
  void build_parallel(std::size_t leaf_size, support::ThreadPool& pool);

  [[nodiscard]] double box_lower_bound(const Node& node, std::span<const double> q) const;
  void search(std::int32_t node_id, std::span<const double> q, std::size_t k,
              std::vector<Neighbor>& heap) const;

  const data::LabeledPoints* db_;
  std::vector<std::uint32_t> order_;  // point indices, partitioned by the tree
  std::vector<Node> nodes_;
  std::int32_t root_ = -1;
  mutable std::atomic<std::uint64_t> distance_evals_{0};
};

}  // namespace peachy::knn
