#include "knn/kdtree.hpp"

#include <algorithm>
#include <future>
#include <numeric>

#include "kernels/kernels.hpp"
#include "support/check.hpp"

namespace peachy::knn {

KdTree::KdTree(const data::LabeledPoints& db, std::size_t leaf_size, support::ThreadPool* pool)
    : db_{&db} {
  PEACHY_CHECK(db.size() > 0, "kdtree: empty database");
  PEACHY_CHECK(db.labels.size() == db.size(), "kdtree: labels/points size mismatch");
  PEACHY_CHECK(leaf_size >= 1, "kdtree: leaf size must be positive");
  order_.resize(db.size());
  std::iota(order_.begin(), order_.end(), 0u);
  if (pool != nullptr && pool->thread_count() > 1 && db.size() > 4 * leaf_size) {
    build_parallel(leaf_size, *pool);
  } else {
    root_ = build_into(nodes_, 0, static_cast<std::uint32_t>(db.size()), leaf_size);
  }
}

bool KdTree::try_split(std::uint32_t begin, std::uint32_t end, std::size_t leaf_size,
                       Node& node, std::uint32_t& mid) {
  const std::size_t d = db_->dims();
  node.box_min.assign(d, 1e308);
  node.box_max.assign(d, -1e308);
  for (std::uint32_t i = begin; i < end; ++i) {
    const auto p = db_->points.point(order_[i]);
    for (std::size_t j = 0; j < d; ++j) {
      node.box_min[j] = std::min(node.box_min[j], p[j]);
      node.box_max[j] = std::max(node.box_max[j], p[j]);
    }
  }
  node.begin = begin;
  node.end = end;
  node.left = -1;
  node.right = -1;

  const std::size_t count = end - begin;
  if (count <= leaf_size) return false;

  // Split the widest dimension at the median.
  std::size_t split_dim = 0;
  double widest = -1.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double w = node.box_max[j] - node.box_min[j];
    if (w > widest) {
      widest = w;
      split_dim = j;
    }
  }
  if (widest <= 0.0) return false;  // all points identical: one (large) leaf

  mid = begin + static_cast<std::uint32_t>(count / 2);
  std::nth_element(order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) {
                     return db_->points.at(a, split_dim) < db_->points.at(b, split_dim);
                   });
  return true;
}

std::int32_t KdTree::build_into(std::vector<Node>& out, std::uint32_t begin, std::uint32_t end,
                                std::size_t leaf_size) {
  Node node;
  std::uint32_t mid = 0;
  if (try_split(begin, end, leaf_size, node, mid)) {
    const auto id = static_cast<std::int32_t>(out.size());
    out.push_back(std::move(node));
    const std::int32_t left = build_into(out, begin, mid, leaf_size);
    const std::int32_t right = build_into(out, mid, end, leaf_size);
    out[static_cast<std::size_t>(id)].left = left;
    out[static_cast<std::size_t>(id)].right = right;
    return id;
  }
  const auto id = static_cast<std::int32_t>(out.size());
  out.push_back(std::move(node));
  return id;
}

void KdTree::build_parallel(std::size_t leaf_size, support::ThreadPool& pool) {
  // Phase 1 (sequential): split the top of the tree until the frontier
  // has ~2x the worker count of subranges.  Skeleton nodes land in
  // nodes_; each frontier entry remembers which child slot it fills.
  struct Pending {
    std::int32_t parent;  // -1 for the root itself
    bool is_left = false;
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  const std::size_t target = 2 * pool.thread_count();
  std::vector<Pending> frontier{{-1, false, 0, static_cast<std::uint32_t>(db_->size())}};
  std::vector<Pending> next;
  while (frontier.size() < target) {
    bool split_any = false;
    next.clear();
    for (const Pending& task : frontier) {
      Node node;
      std::uint32_t mid = 0;
      if (frontier.size() + next.size() < 2 * target &&
          try_split(task.begin, task.end, leaf_size, node, mid)) {
        const auto id = static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back(std::move(node));
        if (task.parent >= 0) {
          auto& slot = nodes_[static_cast<std::size_t>(task.parent)];
          (task.is_left ? slot.left : slot.right) = id;
        } else {
          root_ = id;
        }
        next.push_back({id, true, task.begin, mid});
        next.push_back({id, false, mid, task.end});
        split_any = true;
      } else {
        // Unsplittable range: keep as a frontier leaf-task.
        next.push_back(task);
      }
    }
    frontier.swap(next);
    if (!split_any) break;
  }

  // Phase 2 (parallel): build each frontier subtree into its own fragment.
  struct Fragment {
    std::vector<Node> nodes;
    std::int32_t root = -1;
  };
  std::vector<std::future<Fragment>> futs;
  futs.reserve(frontier.size());
  for (const Pending& task : frontier) {
    futs.push_back(pool.submit_future([this, task, leaf_size] {
      Fragment f;
      f.root = build_into(f.nodes, task.begin, task.end, leaf_size);
      return f;
    }));
  }

  // Phase 3 (sequential): merge fragments, rebasing child ids.
  for (std::size_t t = 0; t < frontier.size(); ++t) {
    Fragment f = futs[t].get();
    const auto base = static_cast<std::int32_t>(nodes_.size());
    for (Node& node : f.nodes) {
      if (node.left >= 0) node.left += base;
      if (node.right >= 0) node.right += base;
      nodes_.push_back(std::move(node));
    }
    const Pending& task = frontier[t];
    if (task.parent >= 0) {
      auto& slot = nodes_[static_cast<std::size_t>(task.parent)];
      (task.is_left ? slot.left : slot.right) = base + f.root;
    } else {
      root_ = base + f.root;
    }
  }
}

double KdTree::box_lower_bound(const Node& node, std::span<const double> q) const {
  double lb = 0.0;
  for (std::size_t j = 0; j < q.size(); ++j) {
    double gap = 0.0;
    if (q[j] < node.box_min[j]) {
      gap = node.box_min[j] - q[j];
    } else if (q[j] > node.box_max[j]) {
      gap = q[j] - node.box_max[j];
    }
    lb += gap * gap;
  }
  return lb;
}

void KdTree::search(std::int32_t node_id, std::span<const double> q, std::size_t k,
                    std::vector<Neighbor>& heap) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  // Prune: the best possible distance in this box cannot beat our k-th
  // best.  Strictly greater — a box at exactly the k-th distance may hold
  // an equal-distance lower-index point, which the deterministic
  // (dist, index) ordering must keep.
  if (heap.size() == k && box_lower_bound(node, q) > heap.front().dist2) return;

  if (node.left < 0) {  // leaf
    // Straight to the pair kernel: the leaf scan is the kd-tree's hot
    // loop, and the span/precondition wrapper costs more than the
    // distance at small d.
    const double* pts = db_->points.values().data();
    const std::size_t dims = db_->points.dims();
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      const std::uint32_t idx = order_[i];
      const Neighbor cand{kernels::squared_distance(pts + idx * dims, q.data(), dims), idx,
                          db_->labels[idx]};
      distance_evals_.fetch_add(1, std::memory_order_relaxed);
      if (heap.size() < k) {
        heap.push_back(cand);
        std::push_heap(heap.begin(), heap.end());
      } else if (cand < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = cand;
        std::push_heap(heap.begin(), heap.end());
      }
    }
    return;
  }
  // Visit the child whose box is nearer to the query first: tightens the
  // bound sooner, pruning the sibling more often.
  const double dl = box_lower_bound(nodes_[static_cast<std::size_t>(node.left)], q);
  const double dr = box_lower_bound(nodes_[static_cast<std::size_t>(node.right)], q);
  if (dl <= dr) {
    search(node.left, q, k, heap);
    search(node.right, q, k, heap);
  } else {
    search(node.right, q, k, heap);
    search(node.left, q, k, heap);
  }
}

std::vector<Neighbor> KdTree::query(std::span<const double> query, std::size_t k) const {
  PEACHY_CHECK(query.size() == db_->dims(), "kdtree: query dimension mismatch");
  PEACHY_CHECK(k >= 1, "kdtree: k must be at least 1");
  std::vector<Neighbor> heap;
  heap.reserve(k);
  search(root_, query, k, heap);
  std::sort_heap(heap.begin(), heap.end());
  return heap;
}

}  // namespace peachy::knn
