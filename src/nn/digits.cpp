#include "nn/digits.hpp"

#include <algorithm>
#include <cmath>

#include "rng/distributions.hpp"
#include "support/check.hpp"

namespace peachy::nn {

namespace {

// Seven-segment encoding: bit 0..6 = A(top), B(top-right), C(bottom-right),
// D(bottom), E(bottom-left), F(top-left), G(middle).
constexpr unsigned kSegments[10] = {
    0b0111111,  // 0: A B C D E F
    0b0000110,  // 1: B C
    0b1011011,  // 2: A B G E D
    0b1001111,  // 3: A B G C D
    0b1100110,  // 4: F G B C
    0b1101101,  // 5: A F G C D
    0b1111101,  // 6: A F G E D C
    0b0000111,  // 7: A B C
    0b1111111,  // 8: all
    0b1101111,  // 9: A B C D F G
};

}  // namespace

SyntheticDigits::SyntheticDigits(DigitsSpec spec) : spec_{spec} {
  PEACHY_CHECK(spec_.side >= 8, "digits: side must be at least 8 pixels");
  PEACHY_CHECK(spec_.noise >= 0.0, "digits: negative noise");
  PEACHY_CHECK(spec_.max_shift >= 0, "digits: negative shift");
  PEACHY_CHECK(spec_.stroke_jitter >= 0.0 && spec_.stroke_jitter < 1.0,
               "digits: stroke jitter must be in [0,1)");
}

void SyntheticDigits::draw_segments(std::vector<double>& img, int digit, int dx, int dy,
                                    double intensity) const {
  PEACHY_CHECK(digit >= 0 && digit <= 9, "digits: digit must be 0..9");
  const auto s = static_cast<int>(spec_.side);
  // Glyph box occupies the central ~70% of the image.
  const int left = s / 4;
  const int right = s - 1 - s / 4;
  const int top = s / 8;
  const int bottom = s - 1 - s / 8;
  const int mid = (top + bottom) / 2;
  const int thick = std::max(1, s / 10);

  const auto put = [&](int x, int y) {
    x += dx;
    y += dy;
    if (x < 0 || y < 0 || x >= s || y >= s) return;
    auto& px = img[static_cast<std::size_t>(y) * spec_.side + static_cast<std::size_t>(x)];
    px = std::min(1.0, px + intensity);
  };
  const auto hline = [&](int y, int x0, int x1) {
    for (int t = 0; t < thick; ++t) {
      for (int x = x0; x <= x1; ++x) put(x, y + t - thick / 2);
    }
  };
  const auto vline = [&](int x, int y0, int y1) {
    for (int t = 0; t < thick; ++t) {
      for (int y = y0; y <= y1; ++y) put(x + t - thick / 2, y);
    }
  };

  const unsigned seg = kSegments[digit];
  if (seg & 0b0000001) hline(top, left, right);          // A
  if (seg & 0b0000010) vline(right, top, mid);           // B
  if (seg & 0b0000100) vline(right, mid, bottom);        // C
  if (seg & 0b0001000) hline(bottom, left, right);       // D
  if (seg & 0b0010000) vline(left, mid, bottom);         // E
  if (seg & 0b0100000) vline(left, top, mid);            // F
  if (seg & 0b1000000) hline(mid, left, right);          // G
}

std::vector<double> SyntheticDigits::clean_template(int digit) const {
  std::vector<double> img(features(), 0.0);
  draw_segments(img, digit, 0, 0, 1.0);
  return img;
}

std::vector<double> SyntheticDigits::render(int digit, rng::SplitMix64& gen) const {
  std::vector<double> img(features(), 0.0);
  const int dx = spec_.max_shift == 0
                     ? 0
                     : static_cast<int>(rng::uniform_int(gen, -spec_.max_shift, spec_.max_shift));
  const int dy = spec_.max_shift == 0
                     ? 0
                     : static_cast<int>(rng::uniform_int(gen, -spec_.max_shift, spec_.max_shift));
  const double intensity =
      1.0 - spec_.stroke_jitter * rng::uniform01(gen);
  draw_segments(img, digit, dx, dy, intensity);
  if (spec_.noise > 0.0) {
    for (double& px : img) {
      px = std::clamp(px + rng::normal(gen, 0.0, spec_.noise), 0.0, 1.0);
    }
  }
  return img;
}

std::vector<double> SyntheticDigits::render_morph(int digit_a, int digit_b, double alpha,
                                                  rng::SplitMix64& gen) const {
  PEACHY_CHECK(alpha >= 0.0 && alpha <= 1.0, "digits: morph alpha outside [0,1]");
  std::vector<double> img(features(), 0.0);
  const int dx = spec_.max_shift == 0
                     ? 0
                     : static_cast<int>(rng::uniform_int(gen, -spec_.max_shift, spec_.max_shift));
  const int dy = spec_.max_shift == 0
                     ? 0
                     : static_cast<int>(rng::uniform_int(gen, -spec_.max_shift, spec_.max_shift));
  draw_segments(img, digit_a, dx, dy, 1.0 - alpha);
  draw_segments(img, digit_b, dx, dy, alpha);
  if (spec_.noise > 0.0) {
    for (double& px : img) {
      px = std::clamp(px + rng::normal(gen, 0.0, spec_.noise), 0.0, 1.0);
    }
  }
  return img;
}

Dataset SyntheticDigits::make_dataset(std::size_t n, std::uint64_t seed) const {
  PEACHY_CHECK(n > 0, "digits: empty dataset requested");
  Dataset ds;
  ds.x = Matrix{n, features()};
  ds.y.resize(n);
  ds.classes = 10;
  rng::SplitMix64 gen{seed};
  for (std::size_t i = 0; i < n; ++i) {
    const int digit = static_cast<int>(i % 10);
    const auto img = render(digit, gen);
    std::copy(img.begin(), img.end(), ds.x.row(i).begin());
    ds.y[i] = digit;
  }
  return ds;
}

std::string SyntheticDigits::ascii_art(std::span<const double> image, std::size_t side) {
  PEACHY_CHECK(image.size() == side * side, "ascii_art: image size != side^2");
  static constexpr char kShades[] = " .:-=+*#%@";
  std::string out;
  out.reserve((side + 1) * side);
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      const double v = std::clamp(image[y * side + x], 0.0, 1.0);
      out.push_back(kShades[static_cast<std::size_t>(v * 9.999)]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace peachy::nn
