#include "nn/ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace peachy::nn {

void EnsembleClassifier::add(std::shared_ptr<const Mlp> member) {
  PEACHY_CHECK(member != nullptr, "ensemble: null member");
  if (!members_.empty()) {
    PEACHY_CHECK(member->features() == members_.front()->features() &&
                     member->classes() == members_.front()->classes(),
                 "ensemble: member shape mismatch");
  }
  members_.push_back(std::move(member));
}

const Mlp& EnsembleClassifier::member(std::size_t i) const {
  PEACHY_CHECK(i < members_.size(), "ensemble: member index out of range");
  return *members_[i];
}

Matrix EnsembleClassifier::predict_proba(const Matrix& x) const {
  PEACHY_CHECK(!members_.empty(), "ensemble: no members");
  Matrix mean{x.rows(), members_.front()->classes()};
  for (const auto& m : members_) {
    const Matrix p = m->predict_proba(x);
    axpy(mean, p, 1.0 / static_cast<double>(members_.size()));
  }
  return mean;
}

std::vector<UncertainPrediction> EnsembleClassifier::predict_uncertain(const Matrix& x) const {
  PEACHY_CHECK(!members_.empty(), "ensemble: no members");
  const std::size_t n = x.rows();
  const std::size_t c = members_.front()->classes();
  const std::size_t m = members_.size();

  // Per-member probabilities.
  std::vector<Matrix> probs;
  probs.reserve(m);
  for (const auto& member : members_) probs.push_back(member->predict_proba(x));

  std::vector<UncertainPrediction> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mean distribution and mean per-member entropy.
    std::vector<double> mean(c, 0.0);
    double mean_member_entropy = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      const auto row = probs[k].row(i);
      double h = 0.0;
      for (std::size_t j = 0; j < c; ++j) {
        mean[j] += row[j] / static_cast<double>(m);
        if (row[j] > 0.0) h -= row[j] * std::log(row[j]);
      }
      mean_member_entropy += h / static_cast<double>(m);
    }
    UncertainPrediction& p = out[i];
    const auto best = std::max_element(mean.begin(), mean.end());
    p.label = static_cast<std::int32_t>(best - mean.begin());
    p.mean_probability = *best;

    // stddev across members of the winning class's probability.
    double ss = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      const double d = probs[k](i, static_cast<std::size_t>(p.label)) - p.mean_probability;
      ss += d * d;
    }
    p.uncertainty = m > 1 ? std::sqrt(ss / static_cast<double>(m - 1)) : 0.0;

    double entropy = 0.0;
    for (double q : mean) {
      if (q > 0.0) entropy -= q * std::log(q);
    }
    p.entropy = entropy;
    p.mutual_information = std::max(0.0, entropy - mean_member_entropy);

    p.member_votes.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      const auto row = probs[k].row(i);
      p.member_votes[k] =
          static_cast<std::int32_t>(std::max_element(row.begin(), row.end()) - row.begin());
    }
  }
  return out;
}

double EnsembleClassifier::accuracy(const Dataset& data) const {
  PEACHY_CHECK(data.size() > 0, "ensemble accuracy: empty dataset");
  const Matrix p = predict_proba(data.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < p.rows(); ++i) {
    const auto row = p.row(i);
    const auto pred = std::max_element(row.begin(), row.end()) - row.begin();
    hits += static_cast<std::int32_t>(pred) == data.y[i];
  }
  return static_cast<double>(hits) / static_cast<double>(p.rows());
}

}  // namespace peachy::nn
