#pragma once
/// \file digits.hpp
/// \brief Synthetic MNIST-like digit generator (paper §7 substitution).
///
/// The HPO assignment classifies MNIST handwritten digits; no dataset
/// files exist in this container, so peachy renders procedural digits:
/// seven-segment glyphs on a small grayscale grid with random translation,
/// stroke-intensity variation, and pixel noise.  The generator also
/// produces *morphs* — pixel blends of two digits — the controllable
/// ambiguous inputs that reproduce Fig. 4's high-uncertainty example
/// (a glyph between a 4 and a 9).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "rng/splitmix.hpp"

namespace peachy::nn {

/// Generator parameters.
struct DigitsSpec {
  std::size_t side = 16;   ///< image is side × side pixels
  double noise = 0.08;     ///< per-pixel Gaussian noise stddev
  int max_shift = 1;       ///< uniform random translation in ±max_shift
  double stroke_jitter = 0.15;  ///< per-sample stroke intensity variation
};

/// Procedural digit renderer and dataset factory.
class SyntheticDigits {
 public:
  explicit SyntheticDigits(DigitsSpec spec = {});

  [[nodiscard]] std::size_t side() const noexcept { return spec_.side; }
  [[nodiscard]] std::size_t features() const noexcept { return spec_.side * spec_.side; }

  /// Render one noisy sample of `digit` (0–9).  Pixels in [0,1].
  [[nodiscard]] std::vector<double> render(int digit, rng::SplitMix64& gen) const;

  /// Render a pixel blend: (1−alpha)·digit_a + alpha·digit_b, with shared
  /// translation and independent noise.  alpha=0.5 is maximally ambiguous.
  [[nodiscard]] std::vector<double> render_morph(int digit_a, int digit_b, double alpha,
                                                 rng::SplitMix64& gen) const;

  /// Balanced labelled dataset of n samples (labels 0–9, cycling).
  [[nodiscard]] Dataset make_dataset(std::size_t n, std::uint64_t seed) const;

  /// Clean template of a digit (no noise/translation) — for tests/demos.
  [[nodiscard]] std::vector<double> clean_template(int digit) const;

  /// ASCII rendering of an image (teaching output; Fig. 4 reproduction).
  [[nodiscard]] static std::string ascii_art(std::span<const double> image, std::size_t side);

 private:
  void draw_segments(std::vector<double>& img, int digit, int dx, int dy,
                     double intensity) const;

  DigitsSpec spec_;
};

}  // namespace peachy::nn
