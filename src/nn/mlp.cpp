#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "rng/distributions.hpp"
#include "rng/splitmix.hpp"
#include "support/check.hpp"

namespace peachy::nn {

std::string TrainConfig::to_string() const {
  std::ostringstream os;
  os << "h=[";
  for (std::size_t i = 0; i < hidden.size(); ++i) os << (i ? "," : "") << hidden[i];
  os << "] lr=" << learning_rate << " mom=" << momentum << " ep=" << epochs
     << " bs=" << batch_size;
  return os.str();
}

Matrix softmax_rows(const Matrix& logits) {
  Matrix out{logits.rows(), logits.cols()};
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const auto in = logits.row(i);
    const auto o = out.row(i);
    const double mx = *std::max_element(in.begin(), in.end());
    double sum = 0.0;
    for (std::size_t j = 0; j < in.size(); ++j) {
      o[j] = std::exp(in[j] - mx);
      sum += o[j];
    }
    for (std::size_t j = 0; j < in.size(); ++j) o[j] /= sum;
  }
  return out;
}

double cross_entropy(const Matrix& proba, std::span<const std::int32_t> labels) {
  PEACHY_CHECK(proba.rows() == labels.size(), "cross_entropy: size mismatch");
  PEACHY_CHECK(proba.rows() > 0, "cross_entropy: empty batch");
  double total = 0.0;
  for (std::size_t i = 0; i < proba.rows(); ++i) {
    const auto y = static_cast<std::size_t>(labels[i]);
    PEACHY_CHECK(y < proba.cols(), "cross_entropy: label out of range");
    total += -std::log(std::max(proba(i, y), 1e-12));
  }
  return total / static_cast<double>(proba.rows());
}

Mlp::Mlp(std::size_t features, std::size_t classes, const TrainConfig& cfg)
    : features_{features}, classes_{classes}, cfg_{cfg} {
  PEACHY_CHECK(features > 0 && classes >= 2, "mlp: need features>0 and classes>=2");
  PEACHY_CHECK(cfg.learning_rate > 0.0, "mlp: learning rate must be positive");
  PEACHY_CHECK(cfg.momentum >= 0.0 && cfg.momentum < 1.0, "mlp: momentum must be in [0,1)");
  PEACHY_CHECK(cfg.batch_size > 0, "mlp: batch size must be positive");
  for (std::size_t h : cfg.hidden) PEACHY_CHECK(h > 0, "mlp: zero-width hidden layer");

  std::vector<std::size_t> sizes{features};
  sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
  sizes.push_back(classes);

  rng::SplitMix64 gen{cfg.seed};
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Layer layer;
    layer.w = Matrix{sizes[l], sizes[l + 1]};
    layer.b = Matrix{1, sizes[l + 1]};
    layer.vw = Matrix{sizes[l], sizes[l + 1]};
    layer.vb = Matrix{1, sizes[l + 1]};
    // He-normal initialization: std = sqrt(2/fan_in).
    const double std_dev = std::sqrt(2.0 / static_cast<double>(sizes[l]));
    for (double& w : layer.w.values()) w = rng::normal(gen, 0.0, std_dev);
    layers_.push_back(std::move(layer));
  }
}

void Mlp::forward(const Matrix& x, std::vector<Matrix>& activations) const {
  PEACHY_CHECK(x.cols() == features_, "mlp: input feature mismatch");
  activations.clear();
  activations.reserve(layers_.size() + 1);
  activations.push_back(x);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = matmul(activations.back(), layers_[l].w);
    for (std::size_t i = 0; i < z.rows(); ++i) {
      const auto zr = z.row(i);
      const auto br = layers_[l].b.row(0);
      for (std::size_t j = 0; j < zr.size(); ++j) zr[j] += br[j];
    }
    if (l + 1 < layers_.size()) {
      for (double& v : z.values()) v = std::max(v, 0.0);  // ReLU
      activations.push_back(std::move(z));
    } else {
      activations.push_back(softmax_rows(z));
    }
  }
}

Matrix Mlp::predict_proba(const Matrix& x) const {
  std::vector<Matrix> acts;
  forward(x, acts);
  return std::move(acts.back());
}

std::vector<std::int32_t> Mlp::predict(const Matrix& x) const {
  const Matrix p = predict_proba(x);
  std::vector<std::int32_t> out(p.rows());
  for (std::size_t i = 0; i < p.rows(); ++i) {
    const auto row = p.row(i);
    out[i] = static_cast<std::int32_t>(std::max_element(row.begin(), row.end()) - row.begin());
  }
  return out;
}

double Mlp::accuracy(const Dataset& data) const {
  PEACHY_CHECK(data.size() > 0, "accuracy: empty dataset");
  const auto pred = predict(data.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) hits += pred[i] == data.y[i];
  return static_cast<double>(hits) / static_cast<double>(pred.size());
}

double Mlp::loss(const Dataset& data) const {
  return cross_entropy(predict_proba(data.x), data.y);
}

double Mlp::train(const Dataset& data) {
  PEACHY_CHECK(data.size() > 0, "train: empty dataset");
  PEACHY_CHECK(data.y.size() == data.size(), "train: labels/examples mismatch");
  const std::size_t n = data.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng::SplitMix64 shuffler{rng::derive_seed(cfg_.seed, 0x51u)};

  double final_epoch_loss = 0.0;
  std::vector<Matrix> acts;
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    // Fisher–Yates with the library generator: deterministic everywhere.
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng::uniform_below(shuffler, i + 1));
      std::swap(order[i], order[j]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += cfg_.batch_size) {
      const std::size_t bsz = std::min(cfg_.batch_size, n - start);
      Matrix bx{bsz, features_};
      std::vector<std::int32_t> by(bsz);
      for (std::size_t i = 0; i < bsz; ++i) {
        const std::size_t src = order[start + i];
        const auto srow = data.x.row(src);
        std::copy(srow.begin(), srow.end(), bx.row(i).begin());
        by[i] = data.y[src];
      }

      forward(bx, acts);
      epoch_loss += cross_entropy(acts.back(), by);
      ++batches;

      // Backprop: delta at softmax+CE output is (p - onehot)/batch.
      Matrix delta = acts.back();
      for (std::size_t i = 0; i < bsz; ++i) {
        delta(i, static_cast<std::size_t>(by[i])) -= 1.0;
      }
      for (double& v : delta.values()) v /= static_cast<double>(bsz);

      for (std::size_t l = layers_.size(); l-- > 0;) {
        Layer& layer = layers_[l];
        const Matrix& input = acts[l];
        const Matrix grad_w = matmul_at_b(input, delta);
        Matrix grad_b{1, delta.cols()};
        for (std::size_t i = 0; i < delta.rows(); ++i) {
          const auto dr = delta.row(i);
          const auto gb = grad_b.row(0);
          for (std::size_t j = 0; j < dr.size(); ++j) gb[j] += dr[j];
        }
        if (l > 0) {
          Matrix next_delta = matmul_a_bt(delta, layer.w);
          // ReLU derivative gate on the hidden activation.
          for (std::size_t i = 0; i < next_delta.rows(); ++i) {
            const auto ndr = next_delta.row(i);
            const auto ar = acts[l].row(i);
            for (std::size_t j = 0; j < ndr.size(); ++j) {
              if (ar[j] <= 0.0) ndr[j] = 0.0;
            }
          }
          delta = std::move(next_delta);
        }
        // Momentum SGD update.
        if (cfg_.momentum > 0.0) {
          for (std::size_t i = 0; i < layer.vw.values().size(); ++i) {
            layer.vw.values()[i] =
                cfg_.momentum * layer.vw.values()[i] - cfg_.learning_rate * grad_w.values()[i];
            layer.w.values()[i] += layer.vw.values()[i];
          }
          for (std::size_t i = 0; i < layer.vb.values().size(); ++i) {
            layer.vb.values()[i] =
                cfg_.momentum * layer.vb.values()[i] - cfg_.learning_rate * grad_b.values()[i];
            layer.b.values()[i] += layer.vb.values()[i];
          }
        } else {
          axpy(layer.w, grad_w, -cfg_.learning_rate);
          axpy(layer.b, grad_b, -cfg_.learning_rate);
        }
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(batches);
  }
  return final_epoch_loss;
}

}  // namespace peachy::nn
