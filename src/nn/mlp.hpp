#pragma once
/// \file mlp.hpp
/// \brief Fully connected classifier (the paper §7 "simple Fully Connected
/// Neural Network that classifies ... handwritten digits").
///
/// ReLU hidden layers, softmax output, cross-entropy loss, SGD with
/// momentum.  Training is deterministic for a fixed seed, which the HPO
/// module relies on: the same (hyperparameters, seed) pair must produce
/// the same model no matter which mini-MPI rank trains it.

#include <cstdint>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace peachy::nn {

/// A labelled dataset: one row per example, labels in [0, classes).
struct Dataset {
  Matrix x;                          ///< examples × features
  std::vector<std::int32_t> y;       ///< one label per example
  std::size_t classes = 0;

  [[nodiscard]] std::size_t size() const noexcept { return x.rows(); }
  [[nodiscard]] std::size_t features() const noexcept { return x.cols(); }
};

/// Training hyper-parameters (the HPO assignment's search space).
struct TrainConfig {
  std::vector<std::size_t> hidden{32};  ///< hidden layer widths
  double learning_rate = 0.1;
  double momentum = 0.0;
  std::size_t epochs = 5;
  std::size_t batch_size = 32;
  std::uint64_t seed = 1;

  /// Stable one-line description, e.g. "h=[32,16] lr=0.1 mom=0.9 ep=5 bs=32".
  [[nodiscard]] std::string to_string() const;
};

/// Multi-layer perceptron classifier.
class Mlp {
 public:
  /// Initialize with He-normal weights for `features` inputs and
  /// `classes` outputs.
  Mlp(std::size_t features, std::size_t classes, const TrainConfig& cfg);

  /// One SGD pass over `data` for cfg.epochs epochs; returns the final
  /// epoch's mean training loss.  Deterministic given cfg.seed.
  double train(const Dataset& data);

  /// Class probabilities for a batch (rows sum to 1).
  [[nodiscard]] Matrix predict_proba(const Matrix& x) const;

  /// argmax class per row.
  [[nodiscard]] std::vector<std::int32_t> predict(const Matrix& x) const;

  /// Fraction of correct predictions on a dataset.
  [[nodiscard]] double accuracy(const Dataset& data) const;

  /// Mean cross-entropy on a dataset.
  [[nodiscard]] double loss(const Dataset& data) const;

  [[nodiscard]] const TrainConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t features() const noexcept { return features_; }
  [[nodiscard]] std::size_t classes() const noexcept { return classes_; }

 private:
  struct Layer {
    Matrix w;   // in × out
    Matrix b;   // 1 × out
    Matrix vw;  // momentum buffers
    Matrix vb;
  };

  /// Forward pass keeping activations (for backprop).  activations[0]=x,
  /// activations[i+1]=output of layer i (post-ReLU for hidden, softmax for
  /// the last).
  void forward(const Matrix& x, std::vector<Matrix>& activations) const;

  std::size_t features_;
  std::size_t classes_;
  TrainConfig cfg_;
  std::vector<Layer> layers_;
};

/// Row-wise softmax (numerically stabilized).  Exposed for tests.
[[nodiscard]] Matrix softmax_rows(const Matrix& logits);

/// Mean cross-entropy of probability rows vs integer labels.
[[nodiscard]] double cross_entropy(const Matrix& proba, std::span<const std::int32_t> labels);

}  // namespace peachy::nn
