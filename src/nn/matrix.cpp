#include "nn/matrix.hpp"

#include "kernels/kernels.hpp"

namespace peachy::nn {

Matrix matmul(const Matrix& a, const Matrix& b) {
  PEACHY_CHECK(a.cols() == b.rows(), "matmul: inner dimensions differ");
  Matrix c{a.rows(), b.cols()};
  // The register-tiled kernel computes C += A·B over the zero-initialized
  // result.  (The old loop skipped a_ik == 0 terms; the kernel multiplies
  // them — for finite inputs the sums are identical, and non-finite
  // values now propagate as IEEE arithmetic says they should.)
  kernels::gemm_block(a.values().data(), b.values().data(), c.values().data(), a.rows(),
                      a.cols(), b.cols());
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  PEACHY_CHECK(a.rows() == b.rows(), "matmul_at_b: row counts differ");
  // Materialize Aᵀ once (a.cols × a.rows — layer-width sized, small next
  // to the batch-sized product) so the gradient product runs through the
  // same tiled kernel as the forward pass.
  Matrix at{a.cols(), a.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) at(j, i) = arow[j];
  }
  Matrix c{a.cols(), b.cols()};
  kernels::gemm_block(at.values().data(), b.values().data(), c.values().data(), a.cols(),
                      a.rows(), b.cols());
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  PEACHY_CHECK(a.cols() == b.cols(), "matmul_a_bt: column counts differ");
  // Both operands are traversed row-wise, so each output element is a
  // contiguous dot product — no transpose needed.
  Matrix c{a.rows(), b.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    const auto crow = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      crow[j] = kernels::dot(arow.data(), b.row(j).data(), a.cols());
    }
  }
  return c;
}

void axpy(Matrix& out, const Matrix& m, double scale) {
  PEACHY_CHECK(out.rows() == m.rows() && out.cols() == m.cols(), "axpy: shape mismatch");
  kernels::axpy(out.values().data(), m.values().data(), scale, out.values().size());
}

}  // namespace peachy::nn
