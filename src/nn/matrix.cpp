#include "nn/matrix.hpp"

namespace peachy::nn {

Matrix matmul(const Matrix& a, const Matrix& b) {
  PEACHY_CHECK(a.cols() == b.rows(), "matmul: inner dimensions differ");
  Matrix c{a.rows(), b.cols()};
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  // i-k-j loop order: streams through b and c rows (cache friendly).
  for (std::size_t i = 0; i < n; ++i) {
    const auto arow = a.row(i);
    const auto crow = c.row(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      if (aik == 0.0) continue;
      const auto brow = b.row(kk);
      for (std::size_t j = 0; j < m; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  PEACHY_CHECK(a.rows() == b.rows(), "matmul_at_b: row counts differ");
  Matrix c{a.cols(), b.cols()};
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const auto arow = a.row(i);
    const auto brow = b.row(i);
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double v = arow[kk];
      if (v == 0.0) continue;
      const auto crow = c.row(kk);
      for (std::size_t j = 0; j < m; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  PEACHY_CHECK(a.cols() == b.cols(), "matmul_a_bt: column counts differ");
  Matrix c{a.rows(), b.rows()};
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    const auto crow = c.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const auto brow = b.row(j);
      double s = 0.0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  }
  return c;
}

void axpy(Matrix& out, const Matrix& m, double scale) {
  PEACHY_CHECK(out.rows() == m.rows() && out.cols() == m.cols(), "axpy: shape mismatch");
  auto& o = out.values();
  const auto& x = m.values();
  for (std::size_t i = 0; i < o.size(); ++i) o[i] += scale * x[i];
}

}  // namespace peachy::nn
