#pragma once
/// \file ensemble.hpp
/// \brief Deep ensembles with uncertainty estimation (paper §7).
///
/// "To quantify uncertainty we use an ensemble, in which several models
/// are trained independently with the same data.  When an ensemble is run,
/// the result is an aggregation of the individual model results."
///
/// The ensemble aggregates by averaging predicted probabilities; the
/// reported uncertainty is the ensemble standard deviation of the winning
/// class's probability — the quantity Fig. 4 annotates ("output of 4 with
/// uncertainty 0.4") — plus predictive entropy and mutual information for
/// richer analyses.

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/mlp.hpp"

namespace peachy::nn {

/// Prediction with uncertainty for one input.
struct UncertainPrediction {
  std::int32_t label = -1;        ///< argmax of the mean probabilities
  double mean_probability = 0.0;  ///< ensemble-mean probability of `label`
  double uncertainty = 0.0;       ///< ensemble stddev of that probability
  double entropy = 0.0;           ///< entropy of the mean distribution (nats)
  double mutual_information = 0.0;  ///< epistemic part: H(mean) − mean(H)
  std::vector<std::int32_t> member_votes;  ///< each member's argmax
};

/// An ensemble of independently trained MLPs.
class EnsembleClassifier {
 public:
  EnsembleClassifier() = default;

  /// Add a trained member.  All members must share feature/class counts.
  void add(std::shared_ptr<const Mlp> member);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] const Mlp& member(std::size_t i) const;

  /// Mean class probabilities over members for a batch.
  [[nodiscard]] Matrix predict_proba(const Matrix& x) const;

  /// Full uncertainty decomposition for each row of x.
  [[nodiscard]] std::vector<UncertainPrediction> predict_uncertain(const Matrix& x) const;

  /// Ensemble accuracy (majority of the mean distribution).
  [[nodiscard]] double accuracy(const Dataset& data) const;

 private:
  std::vector<std::shared_ptr<const Mlp>> members_;
};

}  // namespace peachy::nn
