#pragma once
/// \file matrix.hpp
/// \brief Minimal dense row-major matrix for the neural-network module.
///
/// Deliberately small: the HPO assignment (paper §7) needs batched
/// matrix–matrix products, transposed products for backprop, and row-wise
/// reductions — nothing more.

#include <cstddef>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace peachy::nn {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_{rows}, cols_{cols}, a_(rows * cols, 0.0) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> values)
      : rows_{rows}, cols_{cols}, a_{std::move(values)} {
    PEACHY_CHECK(a_.size() == rows * cols, "matrix: values size != rows*cols");
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    PEACHY_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return a_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    PEACHY_CHECK(r < rows_ && c < cols_, "matrix index out of range");
    return a_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    PEACHY_CHECK(r < rows_, "matrix row out of range");
    return {a_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    PEACHY_CHECK(r < rows_, "matrix row out of range");
    return {a_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<double>& values() noexcept { return a_; }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return a_; }

  void fill(double v) { std::fill(a_.begin(), a_.end(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> a_;
};

/// C = A·B.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C = Aᵀ·B (used for weight gradients without materializing Aᵀ).
[[nodiscard]] Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A·Bᵀ (used for input gradients without materializing Bᵀ).
[[nodiscard]] Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// out += scale * m, element-wise (shapes must match).
void axpy(Matrix& out, const Matrix& m, double scale);

}  // namespace peachy::nn
