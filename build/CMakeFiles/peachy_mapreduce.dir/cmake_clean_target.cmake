file(REMOVE_RECURSE
  "libpeachy_mapreduce.a"
)
