file(REMOVE_RECURSE
  "CMakeFiles/peachy_mapreduce.dir/src/mapreduce/mapreduce.cpp.o"
  "CMakeFiles/peachy_mapreduce.dir/src/mapreduce/mapreduce.cpp.o.d"
  "CMakeFiles/peachy_mapreduce.dir/src/mapreduce/wordcount.cpp.o"
  "CMakeFiles/peachy_mapreduce.dir/src/mapreduce/wordcount.cpp.o.d"
  "libpeachy_mapreduce.a"
  "libpeachy_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
