# Empty compiler generated dependencies file for peachy_mapreduce.
# This may be replaced when dependencies are built.
