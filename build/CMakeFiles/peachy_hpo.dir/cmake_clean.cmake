file(REMOVE_RECURSE
  "CMakeFiles/peachy_hpo.dir/src/hpo/halving.cpp.o"
  "CMakeFiles/peachy_hpo.dir/src/hpo/halving.cpp.o.d"
  "CMakeFiles/peachy_hpo.dir/src/hpo/hpo.cpp.o"
  "CMakeFiles/peachy_hpo.dir/src/hpo/hpo.cpp.o.d"
  "libpeachy_hpo.a"
  "libpeachy_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
