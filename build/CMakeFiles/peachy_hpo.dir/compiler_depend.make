# Empty compiler generated dependencies file for peachy_hpo.
# This may be replaced when dependencies are built.
