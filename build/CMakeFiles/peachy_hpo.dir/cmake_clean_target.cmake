file(REMOVE_RECURSE
  "libpeachy_hpo.a"
)
