file(REMOVE_RECURSE
  "libpeachy_kmeans.a"
)
