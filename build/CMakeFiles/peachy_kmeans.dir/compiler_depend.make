# Empty compiler generated dependencies file for peachy_kmeans.
# This may be replaced when dependencies are built.
