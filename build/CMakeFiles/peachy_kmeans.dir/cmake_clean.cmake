file(REMOVE_RECURSE
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/kmeans.cpp.o"
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/kmeans.cpp.o.d"
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/mpi_kmeans.cpp.o"
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/mpi_kmeans.cpp.o.d"
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/simt_kmeans.cpp.o"
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/simt_kmeans.cpp.o.d"
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/variants.cpp.o"
  "CMakeFiles/peachy_kmeans.dir/src/kmeans/variants.cpp.o.d"
  "libpeachy_kmeans.a"
  "libpeachy_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
