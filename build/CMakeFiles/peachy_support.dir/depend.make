# Empty dependencies file for peachy_support.
# This may be replaced when dependencies are built.
