
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cpp" "CMakeFiles/peachy_support.dir/src/support/cli.cpp.o" "gcc" "CMakeFiles/peachy_support.dir/src/support/cli.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "CMakeFiles/peachy_support.dir/src/support/stats.cpp.o" "gcc" "CMakeFiles/peachy_support.dir/src/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "CMakeFiles/peachy_support.dir/src/support/table.cpp.o" "gcc" "CMakeFiles/peachy_support.dir/src/support/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "CMakeFiles/peachy_support.dir/src/support/thread_pool.cpp.o" "gcc" "CMakeFiles/peachy_support.dir/src/support/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
