file(REMOVE_RECURSE
  "libpeachy_support.a"
)
