file(REMOVE_RECURSE
  "CMakeFiles/peachy_support.dir/src/support/cli.cpp.o"
  "CMakeFiles/peachy_support.dir/src/support/cli.cpp.o.d"
  "CMakeFiles/peachy_support.dir/src/support/stats.cpp.o"
  "CMakeFiles/peachy_support.dir/src/support/stats.cpp.o.d"
  "CMakeFiles/peachy_support.dir/src/support/table.cpp.o"
  "CMakeFiles/peachy_support.dir/src/support/table.cpp.o.d"
  "CMakeFiles/peachy_support.dir/src/support/thread_pool.cpp.o"
  "CMakeFiles/peachy_support.dir/src/support/thread_pool.cpp.o.d"
  "libpeachy_support.a"
  "libpeachy_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
