file(REMOVE_RECURSE
  "libpeachy_chapel.a"
)
