file(REMOVE_RECURSE
  "CMakeFiles/peachy_chapel.dir/src/chapel/chapel.cpp.o"
  "CMakeFiles/peachy_chapel.dir/src/chapel/chapel.cpp.o.d"
  "libpeachy_chapel.a"
  "libpeachy_chapel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_chapel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
