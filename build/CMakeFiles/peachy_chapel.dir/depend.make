# Empty dependencies file for peachy_chapel.
# This may be replaced when dependencies are built.
