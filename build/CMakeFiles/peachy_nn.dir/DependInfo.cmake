
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/digits.cpp" "CMakeFiles/peachy_nn.dir/src/nn/digits.cpp.o" "gcc" "CMakeFiles/peachy_nn.dir/src/nn/digits.cpp.o.d"
  "/root/repo/src/nn/ensemble.cpp" "CMakeFiles/peachy_nn.dir/src/nn/ensemble.cpp.o" "gcc" "CMakeFiles/peachy_nn.dir/src/nn/ensemble.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "CMakeFiles/peachy_nn.dir/src/nn/matrix.cpp.o" "gcc" "CMakeFiles/peachy_nn.dir/src/nn/matrix.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "CMakeFiles/peachy_nn.dir/src/nn/mlp.cpp.o" "gcc" "CMakeFiles/peachy_nn.dir/src/nn/mlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/peachy_support.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
