file(REMOVE_RECURSE
  "CMakeFiles/peachy_nn.dir/src/nn/digits.cpp.o"
  "CMakeFiles/peachy_nn.dir/src/nn/digits.cpp.o.d"
  "CMakeFiles/peachy_nn.dir/src/nn/ensemble.cpp.o"
  "CMakeFiles/peachy_nn.dir/src/nn/ensemble.cpp.o.d"
  "CMakeFiles/peachy_nn.dir/src/nn/matrix.cpp.o"
  "CMakeFiles/peachy_nn.dir/src/nn/matrix.cpp.o.d"
  "CMakeFiles/peachy_nn.dir/src/nn/mlp.cpp.o"
  "CMakeFiles/peachy_nn.dir/src/nn/mlp.cpp.o.d"
  "libpeachy_nn.a"
  "libpeachy_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
