file(REMOVE_RECURSE
  "libpeachy_nn.a"
)
