# Empty dependencies file for peachy_nn.
# This may be replaced when dependencies are built.
