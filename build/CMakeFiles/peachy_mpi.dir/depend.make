# Empty dependencies file for peachy_mpi.
# This may be replaced when dependencies are built.
