file(REMOVE_RECURSE
  "CMakeFiles/peachy_mpi.dir/src/mpi/machine.cpp.o"
  "CMakeFiles/peachy_mpi.dir/src/mpi/machine.cpp.o.d"
  "libpeachy_mpi.a"
  "libpeachy_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
