file(REMOVE_RECURSE
  "libpeachy_mpi.a"
)
