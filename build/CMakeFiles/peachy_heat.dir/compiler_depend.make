# Empty compiler generated dependencies file for peachy_heat.
# This may be replaced when dependencies are built.
