file(REMOVE_RECURSE
  "CMakeFiles/peachy_heat.dir/src/heat/heat.cpp.o"
  "CMakeFiles/peachy_heat.dir/src/heat/heat.cpp.o.d"
  "libpeachy_heat.a"
  "libpeachy_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
