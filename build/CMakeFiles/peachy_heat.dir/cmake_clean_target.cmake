file(REMOVE_RECURSE
  "libpeachy_heat.a"
)
