file(REMOVE_RECURSE
  "libpeachy_geo.a"
)
