file(REMOVE_RECURSE
  "CMakeFiles/peachy_geo.dir/src/geo/city.cpp.o"
  "CMakeFiles/peachy_geo.dir/src/geo/city.cpp.o.d"
  "CMakeFiles/peachy_geo.dir/src/geo/geometry.cpp.o"
  "CMakeFiles/peachy_geo.dir/src/geo/geometry.cpp.o.d"
  "CMakeFiles/peachy_geo.dir/src/geo/raster.cpp.o"
  "CMakeFiles/peachy_geo.dir/src/geo/raster.cpp.o.d"
  "libpeachy_geo.a"
  "libpeachy_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
