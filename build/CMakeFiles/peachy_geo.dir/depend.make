# Empty dependencies file for peachy_geo.
# This may be replaced when dependencies are built.
