file(REMOVE_RECURSE
  "CMakeFiles/peachy_pipeline.dir/src/pipeline/crime.cpp.o"
  "CMakeFiles/peachy_pipeline.dir/src/pipeline/crime.cpp.o.d"
  "CMakeFiles/peachy_pipeline.dir/src/pipeline/pipeline.cpp.o"
  "CMakeFiles/peachy_pipeline.dir/src/pipeline/pipeline.cpp.o.d"
  "libpeachy_pipeline.a"
  "libpeachy_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
