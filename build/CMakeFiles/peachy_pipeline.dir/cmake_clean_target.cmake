file(REMOVE_RECURSE
  "libpeachy_pipeline.a"
)
