# Empty dependencies file for peachy_pipeline.
# This may be replaced when dependencies are built.
