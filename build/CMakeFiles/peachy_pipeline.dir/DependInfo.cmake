
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/crime.cpp" "CMakeFiles/peachy_pipeline.dir/src/pipeline/crime.cpp.o" "gcc" "CMakeFiles/peachy_pipeline.dir/src/pipeline/crime.cpp.o.d"
  "/root/repo/src/pipeline/pipeline.cpp" "CMakeFiles/peachy_pipeline.dir/src/pipeline/pipeline.cpp.o" "gcc" "CMakeFiles/peachy_pipeline.dir/src/pipeline/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/peachy_support.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_spark.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_geo.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_data.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
