file(REMOVE_RECURSE
  "CMakeFiles/peachy_rng.dir/src/rng/selftest.cpp.o"
  "CMakeFiles/peachy_rng.dir/src/rng/selftest.cpp.o.d"
  "libpeachy_rng.a"
  "libpeachy_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
