# Empty compiler generated dependencies file for peachy_rng.
# This may be replaced when dependencies are built.
