file(REMOVE_RECURSE
  "libpeachy_rng.a"
)
