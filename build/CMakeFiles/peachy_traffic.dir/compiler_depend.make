# Empty compiler generated dependencies file for peachy_traffic.
# This may be replaced when dependencies are built.
