file(REMOVE_RECURSE
  "CMakeFiles/peachy_traffic.dir/src/traffic/diagram.cpp.o"
  "CMakeFiles/peachy_traffic.dir/src/traffic/diagram.cpp.o.d"
  "CMakeFiles/peachy_traffic.dir/src/traffic/grid.cpp.o"
  "CMakeFiles/peachy_traffic.dir/src/traffic/grid.cpp.o.d"
  "CMakeFiles/peachy_traffic.dir/src/traffic/mpi_traffic.cpp.o"
  "CMakeFiles/peachy_traffic.dir/src/traffic/mpi_traffic.cpp.o.d"
  "CMakeFiles/peachy_traffic.dir/src/traffic/traffic.cpp.o"
  "CMakeFiles/peachy_traffic.dir/src/traffic/traffic.cpp.o.d"
  "libpeachy_traffic.a"
  "libpeachy_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
