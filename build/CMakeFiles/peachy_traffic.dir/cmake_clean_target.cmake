file(REMOVE_RECURSE
  "libpeachy_traffic.a"
)
