# Empty compiler generated dependencies file for peachy_data.
# This may be replaced when dependencies are built.
