
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "CMakeFiles/peachy_data.dir/src/data/csv.cpp.o" "gcc" "CMakeFiles/peachy_data.dir/src/data/csv.cpp.o.d"
  "/root/repo/src/data/frame.cpp" "CMakeFiles/peachy_data.dir/src/data/frame.cpp.o" "gcc" "CMakeFiles/peachy_data.dir/src/data/frame.cpp.o.d"
  "/root/repo/src/data/points.cpp" "CMakeFiles/peachy_data.dir/src/data/points.cpp.o" "gcc" "CMakeFiles/peachy_data.dir/src/data/points.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/peachy_support.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
