file(REMOVE_RECURSE
  "libpeachy_data.a"
)
