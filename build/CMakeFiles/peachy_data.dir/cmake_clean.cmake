file(REMOVE_RECURSE
  "CMakeFiles/peachy_data.dir/src/data/csv.cpp.o"
  "CMakeFiles/peachy_data.dir/src/data/csv.cpp.o.d"
  "CMakeFiles/peachy_data.dir/src/data/frame.cpp.o"
  "CMakeFiles/peachy_data.dir/src/data/frame.cpp.o.d"
  "CMakeFiles/peachy_data.dir/src/data/points.cpp.o"
  "CMakeFiles/peachy_data.dir/src/data/points.cpp.o.d"
  "libpeachy_data.a"
  "libpeachy_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
