# Empty compiler generated dependencies file for peachy_knn.
# This may be replaced when dependencies are built.
