
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/knn/kdtree.cpp" "CMakeFiles/peachy_knn.dir/src/knn/kdtree.cpp.o" "gcc" "CMakeFiles/peachy_knn.dir/src/knn/kdtree.cpp.o.d"
  "/root/repo/src/knn/knn.cpp" "CMakeFiles/peachy_knn.dir/src/knn/knn.cpp.o" "gcc" "CMakeFiles/peachy_knn.dir/src/knn/knn.cpp.o.d"
  "/root/repo/src/knn/mapreduce_knn.cpp" "CMakeFiles/peachy_knn.dir/src/knn/mapreduce_knn.cpp.o" "gcc" "CMakeFiles/peachy_knn.dir/src/knn/mapreduce_knn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/peachy_support.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_data.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_mpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
