file(REMOVE_RECURSE
  "libpeachy_knn.a"
)
