file(REMOVE_RECURSE
  "CMakeFiles/peachy_knn.dir/src/knn/kdtree.cpp.o"
  "CMakeFiles/peachy_knn.dir/src/knn/kdtree.cpp.o.d"
  "CMakeFiles/peachy_knn.dir/src/knn/knn.cpp.o"
  "CMakeFiles/peachy_knn.dir/src/knn/knn.cpp.o.d"
  "CMakeFiles/peachy_knn.dir/src/knn/mapreduce_knn.cpp.o"
  "CMakeFiles/peachy_knn.dir/src/knn/mapreduce_knn.cpp.o.d"
  "libpeachy_knn.a"
  "libpeachy_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
