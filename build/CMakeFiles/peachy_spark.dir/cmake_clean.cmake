file(REMOVE_RECURSE
  "CMakeFiles/peachy_spark.dir/src/spark/spark.cpp.o"
  "CMakeFiles/peachy_spark.dir/src/spark/spark.cpp.o.d"
  "libpeachy_spark.a"
  "libpeachy_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peachy_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
