file(REMOVE_RECURSE
  "libpeachy_spark.a"
)
