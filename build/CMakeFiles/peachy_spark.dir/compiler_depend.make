# Empty compiler generated dependencies file for peachy_spark.
# This may be replaced when dependencies are built.
