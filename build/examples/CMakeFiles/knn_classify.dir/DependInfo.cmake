
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/knn_classify.cpp" "examples/CMakeFiles/knn_classify.dir/knn_classify.cpp.o" "gcc" "examples/CMakeFiles/knn_classify.dir/knn_classify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/peachy_knn.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_kmeans.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_traffic.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_heat.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_chapel.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_data.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_spark.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_geo.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_hpo.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_mpi.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_nn.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_rng.dir/DependInfo.cmake"
  "/root/repo/build/CMakeFiles/peachy_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
