# Empty dependencies file for traffic_sim.
# This may be replaced when dependencies are built.
