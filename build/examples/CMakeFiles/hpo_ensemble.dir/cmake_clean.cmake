file(REMOVE_RECURSE
  "CMakeFiles/hpo_ensemble.dir/hpo_ensemble.cpp.o"
  "CMakeFiles/hpo_ensemble.dir/hpo_ensemble.cpp.o.d"
  "hpo_ensemble"
  "hpo_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpo_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
