# Empty compiler generated dependencies file for hpo_ensemble.
# This may be replaced when dependencies are built.
