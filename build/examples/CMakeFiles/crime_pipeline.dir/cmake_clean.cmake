file(REMOVE_RECURSE
  "CMakeFiles/crime_pipeline.dir/crime_pipeline.cpp.o"
  "CMakeFiles/crime_pipeline.dir/crime_pipeline.cpp.o.d"
  "crime_pipeline"
  "crime_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crime_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
