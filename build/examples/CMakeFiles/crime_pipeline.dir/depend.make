# Empty dependencies file for crime_pipeline.
# This may be replaced when dependencies are built.
