file(REMOVE_RECURSE
  "../bench/exp_pipeline"
  "../bench/exp_pipeline.pdb"
  "CMakeFiles/exp_pipeline.dir/exp_pipeline.cpp.o"
  "CMakeFiles/exp_pipeline.dir/exp_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
