file(REMOVE_RECURSE
  "../bench/bench_substrates"
  "../bench/bench_substrates.pdb"
  "CMakeFiles/bench_substrates.dir/bench_substrates.cpp.o"
  "CMakeFiles/bench_substrates.dir/bench_substrates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
