# Empty dependencies file for exp_kmeans_simt.
# This may be replaced when dependencies are built.
