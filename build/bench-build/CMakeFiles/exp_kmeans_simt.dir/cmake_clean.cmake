file(REMOVE_RECURSE
  "../bench/exp_kmeans_simt"
  "../bench/exp_kmeans_simt.pdb"
  "CMakeFiles/exp_kmeans_simt.dir/exp_kmeans_simt.cpp.o"
  "CMakeFiles/exp_kmeans_simt.dir/exp_kmeans_simt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_kmeans_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
