# Empty compiler generated dependencies file for exp_knn.
# This may be replaced when dependencies are built.
