file(REMOVE_RECURSE
  "../bench/exp_knn"
  "../bench/exp_knn.pdb"
  "CMakeFiles/exp_knn.dir/exp_knn.cpp.o"
  "CMakeFiles/exp_knn.dir/exp_knn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
