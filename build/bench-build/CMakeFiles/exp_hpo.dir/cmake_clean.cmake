file(REMOVE_RECURSE
  "../bench/exp_hpo"
  "../bench/exp_hpo.pdb"
  "CMakeFiles/exp_hpo.dir/exp_hpo.cpp.o"
  "CMakeFiles/exp_hpo.dir/exp_hpo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
