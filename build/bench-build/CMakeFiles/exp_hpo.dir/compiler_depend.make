# Empty compiler generated dependencies file for exp_hpo.
# This may be replaced when dependencies are built.
