# Empty dependencies file for exp_knn_mapreduce.
# This may be replaced when dependencies are built.
