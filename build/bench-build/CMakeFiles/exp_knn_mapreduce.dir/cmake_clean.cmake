file(REMOVE_RECURSE
  "../bench/exp_knn_mapreduce"
  "../bench/exp_knn_mapreduce.pdb"
  "CMakeFiles/exp_knn_mapreduce.dir/exp_knn_mapreduce.cpp.o"
  "CMakeFiles/exp_knn_mapreduce.dir/exp_knn_mapreduce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_knn_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
