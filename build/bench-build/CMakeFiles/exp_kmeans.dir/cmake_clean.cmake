file(REMOVE_RECURSE
  "../bench/exp_kmeans"
  "../bench/exp_kmeans.pdb"
  "CMakeFiles/exp_kmeans.dir/exp_kmeans.cpp.o"
  "CMakeFiles/exp_kmeans.dir/exp_kmeans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
