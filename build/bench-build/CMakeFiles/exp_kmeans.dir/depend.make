# Empty dependencies file for exp_kmeans.
# This may be replaced when dependencies are built.
