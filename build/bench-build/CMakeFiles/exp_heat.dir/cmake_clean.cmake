file(REMOVE_RECURSE
  "../bench/exp_heat"
  "../bench/exp_heat.pdb"
  "CMakeFiles/exp_heat.dir/exp_heat.cpp.o"
  "CMakeFiles/exp_heat.dir/exp_heat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
