# Empty dependencies file for exp_heat.
# This may be replaced when dependencies are built.
