file(REMOVE_RECURSE
  "../bench/exp_kmeans_mpi"
  "../bench/exp_kmeans_mpi.pdb"
  "CMakeFiles/exp_kmeans_mpi.dir/exp_kmeans_mpi.cpp.o"
  "CMakeFiles/exp_kmeans_mpi.dir/exp_kmeans_mpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_kmeans_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
