# Empty dependencies file for exp_kmeans_mpi.
# This may be replaced when dependencies are built.
