# Empty compiler generated dependencies file for exp_traffic.
# This may be replaced when dependencies are built.
