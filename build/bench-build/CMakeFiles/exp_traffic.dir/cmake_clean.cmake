file(REMOVE_RECURSE
  "../bench/exp_traffic"
  "../bench/exp_traffic.pdb"
  "CMakeFiles/exp_traffic.dir/exp_traffic.cpp.o"
  "CMakeFiles/exp_traffic.dir/exp_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
