file(REMOVE_RECURSE
  "../bench/bench_rng"
  "../bench/bench_rng.pdb"
  "CMakeFiles/bench_rng.dir/bench_rng.cpp.o"
  "CMakeFiles/bench_rng.dir/bench_rng.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
