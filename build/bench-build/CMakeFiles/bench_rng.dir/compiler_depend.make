# Empty compiler generated dependencies file for bench_rng.
# This may be replaced when dependencies are built.
