# Empty dependencies file for bench_spark.
# This may be replaced when dependencies are built.
