file(REMOVE_RECURSE
  "../bench/bench_spark"
  "../bench/bench_spark.pdb"
  "CMakeFiles/bench_spark.dir/bench_spark.cpp.o"
  "CMakeFiles/bench_spark.dir/bench_spark.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
