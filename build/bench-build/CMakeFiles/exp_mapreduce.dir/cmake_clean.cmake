file(REMOVE_RECURSE
  "../bench/exp_mapreduce"
  "../bench/exp_mapreduce.pdb"
  "CMakeFiles/exp_mapreduce.dir/exp_mapreduce.cpp.o"
  "CMakeFiles/exp_mapreduce.dir/exp_mapreduce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
