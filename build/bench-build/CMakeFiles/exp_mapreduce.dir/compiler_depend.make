# Empty compiler generated dependencies file for exp_mapreduce.
# This may be replaced when dependencies are built.
