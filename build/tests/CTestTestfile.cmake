# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_mapreduce[1]_include.cmake")
include("/root/repo/build/tests/test_spark[1]_include.cmake")
include("/root/repo/build/tests/test_chapel[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_knn[1]_include.cmake")
include("/root/repo/build/tests/test_kmeans[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_heat[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_hpo[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_support_extra[1]_include.cmake")
