# Empty dependencies file for test_support_extra.
# This may be replaced when dependencies are built.
