file(REMOVE_RECURSE
  "CMakeFiles/test_support_extra.dir/test_support_extra.cpp.o"
  "CMakeFiles/test_support_extra.dir/test_support_extra.cpp.o.d"
  "test_support_extra"
  "test_support_extra.pdb"
  "test_support_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
