file(REMOVE_RECURSE
  "CMakeFiles/test_chapel.dir/test_chapel.cpp.o"
  "CMakeFiles/test_chapel.dir/test_chapel.cpp.o.d"
  "test_chapel"
  "test_chapel.pdb"
  "test_chapel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chapel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
