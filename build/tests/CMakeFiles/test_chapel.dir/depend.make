# Empty dependencies file for test_chapel.
# This may be replaced when dependencies are built.
