file(REMOVE_RECURSE
  "CMakeFiles/test_heat.dir/test_heat.cpp.o"
  "CMakeFiles/test_heat.dir/test_heat.cpp.o.d"
  "test_heat"
  "test_heat.pdb"
  "test_heat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
