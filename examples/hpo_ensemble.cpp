/// \file hpo_ensemble.cpp
/// \brief Figure 4 reproduction: ensemble uncertainty on handwriting-like
/// digits — a clean digit gets a confident prediction, an ambiguous 4/9
/// morph gets a high reported uncertainty.  The ensemble members come
/// "for free" from a distributed hyper-parameter search (paper §7).
///
///   ./hpo_ensemble [--train=600 --val=300 --ranks=4 --ensemble=5
///                   --schedule=dynamic --seed=29]

#include <iostream>

#include "hpo/hpo.hpp"
#include "nn/digits.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto n_train = cli.get<std::size_t>("train", 600, "training samples");
  const auto n_val = cli.get<std::size_t>("val", 300, "validation samples");
  const auto ranks = cli.get<int>("ranks", 4, "mini-MPI ranks");
  const auto ensemble_size = cli.get<std::size_t>("ensemble", 5, "ensemble members");
  const auto sched_name =
      cli.get<std::string>("schedule", "dynamic", "block | cyclic | dynamic");
  const auto seed = cli.get<std::uint64_t>("seed", 29, "seed");
  cli.finish();

  const auto schedule = sched_name == "block"    ? peachy::hpo::Schedule::kBlock
                        : sched_name == "cyclic" ? peachy::hpo::Schedule::kCyclic
                                                 : peachy::hpo::Schedule::kDynamic;

  const peachy::nn::SyntheticDigits digits;
  const auto train = digits.make_dataset(n_train, seed);
  const auto val = digits.make_dataset(n_val, seed + 1);

  peachy::hpo::SearchSpace space;
  space.epochs = 8;
  space.base_seed = seed;
  const auto configs = space.enumerate();
  std::cout << "HPO (paper §7): " << configs.size() << " hyper-parameter configs over "
            << ranks << " ranks (" << peachy::hpo::to_string(schedule) << " schedule), "
            << n_train << " training digits\n\n";

  std::vector<peachy::hpo::TaskResult> results;
  peachy::hpo::RunStats stats;
  peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
    peachy::hpo::RunStats local;  // stats are rank-local
    auto got = peachy::hpo::distributed_search(comm, train, val, configs, schedule, &local);
    if (comm.rank() == 0) {
      results = std::move(got);
      stats = std::move(local);
    }
  });

  peachy::support::Table search_table;
  search_table.header({"task", "config", "rank", "val acc", "train loss"});
  for (const auto& r : results) {
    search_table.row({static_cast<std::int64_t>(r.task), configs[r.task].to_string(),
                      static_cast<std::int64_t>(r.rank), r.val_accuracy, r.train_loss});
  }
  search_table.print();
  std::cout << "\ntasks per rank:";
  for (std::size_t r = 0; r < stats.tasks_per_rank.size(); ++r) {
    std::cout << " rank" << r << "=" << stats.tasks_per_rank[r];
  }
  std::cout << " (imbalance cv " << stats.imbalance_cv << ")\n";

  const auto ens = peachy::hpo::build_ensemble(train, configs, results, ensemble_size);
  std::cout << "\nensemble of top " << ensemble_size
            << " models: val accuracy = " << ens.accuracy(val) << "\n\n";

  // Fig. 4: clean vs ambiguous input.
  peachy::rng::SplitMix64 gen{seed + 7};
  const auto clean_img = digits.render(4, gen);
  const auto morph_img = digits.render_morph(4, 9, 0.5, gen);
  peachy::nn::Matrix batch{2, digits.features()};
  std::copy(clean_img.begin(), clean_img.end(), batch.row(0).begin());
  std::copy(morph_img.begin(), morph_img.end(), batch.row(1).begin());
  const auto preds = ens.predict_uncertain(batch);

  const auto show = [&](const char* name, const std::vector<double>& img,
                        const peachy::nn::UncertainPrediction& p) {
    std::cout << name << ":\n"
              << peachy::nn::SyntheticDigits::ascii_art(img, digits.side())
              << "predicted " << p.label << " with mean probability " << p.mean_probability
              << ", uncertainty (ensemble σ) " << p.uncertainty << ", entropy " << p.entropy
              << "\nmember votes:";
    for (auto v : p.member_votes) std::cout << ' ' << v;
    std::cout << "\n\n";
  };
  show("B) clean '4' (low uncertainty expected)", clean_img, preds[0]);
  show("A) 4/9 morph (high uncertainty expected)", morph_img, preds[1]);

  std::cout << "uncertainty ratio (ambiguous / clean, by entropy): "
            << preds[1].entropy / std::max(preds[0].entropy, 1e-9) << "x\n";
  return 0;
}
