/// \file knn_classify.cpp
/// \brief The kNN assignment end to end (paper §2): parse a CSV database
/// and query set (the "early course" adaptation), classify with every
/// strategy — full sort, bounded heap, k-d tree, OpenMP-style threads,
/// and MapReduce over mini-MPI with the local-combine optimization — and
/// compare their cost profiles.
///
///   ./knn_classify [--n=2000 --q=500 --d=16 --classes=5 --k=7
///                   --ranks=4 --threads=4 --seed=3]

#include <iostream>
#include <sstream>

#include "data/csv.hpp"
#include "data/points.hpp"
#include "knn/kdtree.hpp"
#include "knn/knn.hpp"
#include "knn/mapreduce_knn.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto n = cli.get<std::size_t>("n", 2000, "database points");
  const auto q = cli.get<std::size_t>("q", 500, "query points");
  const auto d = cli.get<std::size_t>("d", 16, "dimensions");
  const auto classes = cli.get<std::size_t>("classes", 5, "number of classes");
  const auto k = cli.get<std::size_t>("k", 7, "neighbors");
  const auto ranks = cli.get<int>("ranks", 4, "mini-MPI ranks");
  const auto threads = cli.get<std::size_t>("threads", 4, "threads for the OpenMP variant");
  const auto seed = cli.get<std::uint64_t>("seed", 3, "dataset seed");
  cli.finish();

  // Generate a labelled dataset and round-trip it through CSV — the full
  // application path of the assignment's "early course" adaptation.
  peachy::data::BlobsSpec spec;
  spec.points_per_class = (n + q) / classes + 1;
  spec.classes = classes;
  spec.dims = d;
  spec.spread = 1.5;
  spec.seed = seed;
  const auto generated = peachy::data::gaussian_blobs(spec);
  const auto csv_text = peachy::data::write_csv_string(peachy::data::to_csv(generated));
  const auto parsed = peachy::data::from_csv(peachy::data::read_csv_string(csv_text));
  std::cout << "kNN (paper §2): parsed " << parsed.size() << " labelled points (" << d
            << "-dimensional, " << classes << " classes) from " << csv_text.size()
            << " bytes of CSV\n";

  auto split = peachy::data::train_test_split(parsed, static_cast<double>(q) /
                                                          static_cast<double>(parsed.size()),
                                              seed);
  std::cout << "database " << split.train.size() << " points, " << split.test.size()
            << " queries, k=" << k << "\n\n";

  peachy::support::Table table;
  table.header({"strategy", "accuracy", "distance evals", "ms"});
  std::vector<std::int32_t> reference;

  peachy::support::ThreadPool pool{threads};
  const auto run_variant = [&](const std::string& name, peachy::knn::ClassifyOptions opts) {
    peachy::knn::ClassifyStats stats;
    const auto pred =
        peachy::knn::classify(split.train, split.test.points, opts,
                              opts.threads > 1 ? &pool : nullptr, &stats);
    if (reference.empty()) reference = pred;
    const bool same = pred == reference;
    table.row({name + (same ? "" : " (MISMATCH!)"),
               peachy::knn::accuracy(pred, split.test.labels),
               static_cast<std::int64_t>(stats.distance_evals), stats.seconds * 1e3});
  };

  peachy::knn::ClassifyOptions opts;
  opts.k = k;
  opts.selection = peachy::knn::Selection::kSort;
  run_variant("full sort  Θ(n log n)/query", opts);
  opts.selection = peachy::knn::Selection::kHeap;
  run_variant("bounded heap  Θ(n log k)/query", opts);
  opts.selection = peachy::knn::Selection::kKdTree;
  run_variant("k-d tree (pruned)", opts);
  opts.selection = peachy::knn::Selection::kHeap;
  opts.threads = threads;
  run_variant("heap + " + std::to_string(threads) + " threads", opts);

  // MapReduce over mini-MPI, with and without the local combine.
  for (const bool combine : {false, true}) {
    peachy::knn::MrKnnOptions mr_opts;
    mr_opts.k = k;
    mr_opts.map_tasks = static_cast<std::size_t>(ranks) * 2;
    mr_opts.local_combine = combine;
    peachy::knn::MrKnnStats mr_stats;
    std::vector<std::int32_t> pred;
    peachy::support::Stopwatch sw;
    peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
      peachy::knn::MrKnnStats local;  // stats are rank-local
      auto got = peachy::knn::mapreduce_classify(comm, split.train, split.test.points, mr_opts,
                                                 &local);
      if (comm.rank() == 0) {
        pred = std::move(got);
        mr_stats = local;
      }
    });
    std::ostringstream name;
    name << "MapReduce x" << ranks << (combine ? " +local combine" : "")
         << " (" << mr_stats.pairs_shuffled << " pairs shuffled)";
    const bool same = pred == reference;
    table.row({name.str() + (same ? "" : " (MISMATCH!)"),
               peachy::knn::accuracy(pred, split.test.labels),
               static_cast<std::int64_t>(split.train.size() * split.test.size()),
               sw.elapsed_ms()});
  }

  table.print();
  std::cout << "\nall strategies agree on every prediction: the paper's point that the\n"
               "parallelization changes the cost, never the answer.\n";
  return 0;
}
