/// \file heat_solver.cpp
/// \brief The 1D heat equation both ways (paper §6): Part 1's implicit
/// `forall` over a Block-distributed array versus Part 2's explicit
/// persistent tasks with barriers and halo cells — validated against the
/// analytic discrete solution, with the task-spawn contrast made visible.
///
///   ./heat_solver [--nx=4001 --nt=400 --alpha=0.25 --locales=4 --tpl=2
///                  --mode=2]

#include <iostream>

#include "heat/heat.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

/// Plot u(x) as a small ASCII profile.
std::string profile_ascii(const std::vector<double>& u, std::size_t width, std::size_t height) {
  double lo = 1e300, hi = -1e300;
  for (double v : u) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;
  std::string canvas((width + 1) * height, ' ');
  for (std::size_t r = 0; r < height; ++r) canvas[r * (width + 1) + width] = '\n';
  for (std::size_t c = 0; c < width; ++c) {
    const std::size_t j = c * (u.size() - 1) / (width - 1);
    const auto row = static_cast<std::size_t>((hi - u[j]) / (hi - lo) * (height - 1));
    canvas[row * (width + 1) + c] = '*';
  }
  return canvas;
}

}  // namespace

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  peachy::heat::Spec spec;
  spec.nx = cli.get<std::size_t>("nx", 4001, "grid points");
  spec.nt = cli.get<std::size_t>("nt", 400, "time steps");
  spec.alpha = cli.get<double>("alpha", 0.25, "diffusion number (<= 0.5)");
  const auto locales = cli.get<std::size_t>("locales", 4, "simulated compute nodes");
  const auto tpl = cli.get<std::size_t>("tpl", 2, "threads per locale");
  const auto mode = cli.get<int>("mode", 2, "initial sine mode");
  cli.finish();

  std::cout << "1D heat equation (paper §6): nx=" << spec.nx << ", nt=" << spec.nt
            << ", alpha=" << spec.alpha << ", " << locales << " locales x " << tpl
            << " threads\n\n";

  const auto initial = peachy::heat::sine_mode(mode);
  const auto serial = peachy::heat::solve_serial(spec, initial);
  const auto exact = peachy::heat::discrete_sine_solution(spec, mode);

  peachy::chapel::LocaleGrid grid1{locales, tpl};
  peachy::heat::SolveStats forall_stats;
  const auto part1 = peachy::heat::solve_forall(spec, initial, grid1, &forall_stats);

  peachy::chapel::LocaleGrid grid2{locales, tpl};
  peachy::heat::SolveStats coforall_stats;
  const auto part2 = peachy::heat::solve_coforall(spec, initial, grid2, &coforall_stats);

  peachy::support::Table table;
  table.header({"solver", "max|err| vs exact", "max|Δ| vs serial", "tasks spawned",
                "remote accesses", "ms"});
  table.row({std::string{"serial (starter code)"},
             peachy::heat::max_abs_diff(serial, exact), 0.0, std::int64_t{0}, std::int64_t{0},
             0.0});
  table.row({std::string{"part 1: forall + BlockDist"},
             peachy::heat::max_abs_diff(part1, exact),
             peachy::heat::max_abs_diff(part1, serial),
             static_cast<std::int64_t>(forall_stats.tasks_spawned),
             static_cast<std::int64_t>(forall_stats.remote_accesses),
             forall_stats.seconds * 1e3});
  table.row({std::string{"part 2: coforall + halo"},
             peachy::heat::max_abs_diff(part2, exact),
             peachy::heat::max_abs_diff(part2, serial),
             static_cast<std::int64_t>(coforall_stats.tasks_spawned),
             static_cast<std::int64_t>(coforall_stats.remote_accesses),
             coforall_stats.seconds * 1e3});
  table.print();

  std::cout << "\nPart 1 re-spawns tasks every step (" << forall_stats.tasks_spawned
            << " total); Part 2 reuses " << coforall_stats.tasks_spawned
            << " persistent tasks — the overhead the assignment eliminates.\n";

  std::cout << "\nfinal temperature profile:\n" << profile_ascii(part2, 72, 14);
  return 0;
}
