/// \file quickstart.cpp
/// \brief Tour of the peachy library: one taste of each of the six Peachy
/// Parallel Assignments (EduHPC 2023) in under a minute.
///
///   ./quickstart [--seed=N]

#include <iostream>

#include "data/points.hpp"
#include "heat/heat.hpp"
#include "hpo/hpo.hpp"
#include "kmeans/kmeans.hpp"
#include "knn/knn.hpp"
#include "knn/mapreduce_knn.hpp"
#include "mapreduce/wordcount.hpp"
#include "mpi/mpi.hpp"
#include "nn/digits.hpp"
#include "pipeline/crime.hpp"
#include "support/cli.hpp"
#include "traffic/traffic.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto seed = cli.get<std::uint64_t>("seed", 2023, "master random seed");
  cli.finish();

  std::cout << "peachy quickstart — the six EduHPC 2023 Peachy assignments\n\n";

  // ---- §2 k-Nearest Neighbor on MapReduce-MPI -----------------------------
  {
    peachy::data::BlobsSpec spec;
    spec.points_per_class = 150;
    spec.classes = 3;
    spec.dims = 8;
    spec.seed = seed;
    const auto all = peachy::data::gaussian_blobs(spec);
    const auto split = peachy::data::train_test_split(all, 0.2, seed);
    std::vector<std::int32_t> predictions;
    peachy::mpi::run(4, [&](peachy::mpi::Comm& comm) {
      peachy::knn::MrKnnOptions opts;
      opts.k = 7;
      auto got = peachy::knn::mapreduce_classify(comm, split.train, split.test.points, opts);
      if (comm.rank() == 0) predictions = std::move(got);
    });
    std::cout << "[knn]      MapReduce kNN over 4 ranks: test accuracy = "
              << peachy::knn::accuracy(predictions, split.test.labels) << "\n";
  }

  // ---- §3 K-means clustering ------------------------------------------------
  {
    peachy::data::BlobsSpec spec;
    spec.points_per_class = 400;
    spec.classes = 4;
    spec.dims = 2;
    spec.seed = seed + 1;
    const auto points = peachy::data::gaussian_blobs(spec).points;
    peachy::kmeans::Options opts;
    opts.k = 4;
    opts.seed = seed;
    peachy::support::ThreadPool pool{4};
    const auto res = peachy::kmeans::cluster_parallel(
        points, opts, peachy::kmeans::Variant::kReduction, pool, 4);
    std::cout << "[kmeans]   " << points.size() << " points -> k=4 in " << res.iterations
              << " iterations (inertia " << res.inertia << ")\n";
  }

  // ---- §4 Data-science pipeline ----------------------------------------------
  {
    peachy::pipeline::CrimeConfig cfg;
    cfg.city.rows = 4;
    cfg.city.cols = 4;
    cfg.historic_arrests = 4000;
    cfg.current_arrests = 2000;
    cfg.seed = seed;
    const auto report = peachy::pipeline::run_crime_pipeline(cfg);
    std::cout << "[pipeline] crime workflow: " << report.events_ingested << " arrests -> "
              << report.rates.size() << " NTAs; hotspot " << report.rates.front().nta << " at "
              << report.rates.front().per_100k << " arrests/100k\n";
  }

  // ---- §5 Nagel–Schreckenberg traffic ------------------------------------------
  {
    peachy::traffic::Spec spec;  // Fig. 3 parameters
    spec.seed = seed;
    peachy::support::ThreadPool pool{4};
    const auto serial = peachy::traffic::run_serial(spec, 200);
    const auto parallel = peachy::traffic::run_parallel(spec, 200, pool, 4);
    std::cout << "[traffic]  200 steps; parallel(4 threads) == serial: "
              << (serial == parallel ? "bit-identical" : "MISMATCH")
              << "; stopped cars now: " << peachy::traffic::stopped_cars(serial) << "\n";
  }

  // ---- §6 1D heat equation in the Chapel model ------------------------------------
  {
    peachy::heat::Spec spec;
    spec.nx = 2001;
    spec.nt = 200;
    peachy::chapel::LocaleGrid grid{4, 2};
    const auto serial = peachy::heat::solve_serial(spec, peachy::heat::sine_mode(1));
    const auto dist = peachy::heat::solve_coforall(spec, peachy::heat::sine_mode(1), grid);
    std::cout << "[heat]     coforall solver on 4 locales, max|Δ| vs serial = "
              << peachy::heat::max_abs_diff(serial, dist) << "\n";
  }

  // ---- §7 Hyper-parameter optimization with ensembles ------------------------------
  {
    const peachy::nn::SyntheticDigits digits;
    const auto train = digits.make_dataset(200, seed);
    const auto val = digits.make_dataset(100, seed + 1);
    peachy::hpo::SearchSpace space;
    space.hidden_layouts = {{16}, {24}};
    space.learning_rates = {0.1, 0.2};
    space.momenta = {0.0};
    space.epochs = 4;
    space.base_seed = seed;
    const auto configs = space.enumerate();
    std::vector<peachy::hpo::TaskResult> results;
    peachy::mpi::run(3, [&](peachy::mpi::Comm& comm) {
      auto got = peachy::hpo::distributed_search(comm, train, val, configs,
                                                 peachy::hpo::Schedule::kDynamic);
      if (comm.rank() == 0) results = std::move(got);
    });
    const auto ens = peachy::hpo::build_ensemble(train, configs, results, 3);
    std::cout << "[hpo]      " << configs.size() << " configs over 3 ranks; top-3 ensemble "
              << "val accuracy = " << ens.accuracy(val) << "\n";
  }

  std::cout << "\nAll six assignments ran. See the other examples for depth.\n";
  return 0;
}
