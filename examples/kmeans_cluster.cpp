/// \file kmeans_cluster.cpp
/// \brief Figure 1 reproduction: K-means on a 2-D point cloud with K = 3,
/// rendered as a labelled scatter plot — plus the assignment's strategy
/// stages (critical → atomic → reduction) run side by side.
///
///   ./kmeans_cluster [--n=1500 --k=3 --spread=1.2 --threads=4 --ranks=2
///                     --seed=11 --ppm=kmeans.ppm]
///
/// Besides the shared-memory strategy stages, the demo runs the
/// distributed variant over mini-MPI and a MapReduce cluster-size count,
/// so one `PEACHY_TRACE=trace.json` run records spans from every
/// substrate: thread pool, parallel_for, mpi, mapreduce, and kernels.

#include <fstream>
#include <iostream>
#include <string>

#include "data/points.hpp"
#include "kmeans/kmeans.hpp"
#include "kmeans/mpi_kmeans.hpp"
#include "mapreduce/mapreduce.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

/// Render a 2-D clustering as ASCII (digits = cluster ids, '*' = centroid).
std::string scatter_ascii(const peachy::data::PointSet& points,
                          const peachy::kmeans::Result& res, std::size_t w, std::size_t h) {
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (std::size_t i = 0; i < points.size(); ++i) {
    min_x = std::min(min_x, points.at(i, 0));
    max_x = std::max(max_x, points.at(i, 0));
    min_y = std::min(min_y, points.at(i, 1));
    max_y = std::max(max_y, points.at(i, 1));
  }
  const auto to_cell = [&](double x, double y) {
    auto cx = static_cast<std::size_t>((x - min_x) / (max_x - min_x + 1e-12) * (w - 1));
    auto cy = static_cast<std::size_t>((max_y - y) / (max_y - min_y + 1e-12) * (h - 1));
    return cy * w + cx;
  };
  std::string canvas(w * h, ' ');
  for (std::size_t i = 0; i < points.size(); ++i) {
    canvas[to_cell(points.at(i, 0), points.at(i, 1))] =
        static_cast<char>('0' + res.assignment[i] % 10);
  }
  for (std::size_t c = 0; c < res.centroids.size(); ++c) {
    canvas[to_cell(res.centroids.at(c, 0), res.centroids.at(c, 1))] = '*';
  }
  std::string out;
  for (std::size_t y = 0; y < h; ++y) {
    out += canvas.substr(y * w, w);
    out += '\n';
  }
  return out;
}

/// Write a colored PPM scatter (one RGB color per cluster).
void write_ppm(const std::string& path, const peachy::data::PointSet& points,
               const peachy::kmeans::Result& res, std::size_t w, std::size_t h) {
  static constexpr unsigned char kPalette[][3] = {
      {230, 60, 60}, {60, 160, 230}, {90, 200, 90},  {230, 180, 50},
      {170, 90, 220}, {240, 130, 180}, {120, 220, 210}, {150, 150, 150},
  };
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (std::size_t i = 0; i < points.size(); ++i) {
    min_x = std::min(min_x, points.at(i, 0));
    max_x = std::max(max_x, points.at(i, 0));
    min_y = std::min(min_y, points.at(i, 1));
    max_y = std::max(max_y, points.at(i, 1));
  }
  std::vector<unsigned char> img(w * h * 3, 255);
  const auto put = [&](double x, double y, const unsigned char* rgb) {
    const auto cx = static_cast<std::size_t>((x - min_x) / (max_x - min_x + 1e-12) * (w - 1));
    const auto cy = static_cast<std::size_t>((max_y - y) / (max_y - min_y + 1e-12) * (h - 1));
    for (int ch = 0; ch < 3; ++ch) img[(cy * w + cx) * 3 + ch] = rgb[ch];
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    put(points.at(i, 0), points.at(i, 1), kPalette[res.assignment[i] % 8]);
  }
  static constexpr unsigned char kBlack[3] = {0, 0, 0};
  for (std::size_t c = 0; c < res.centroids.size(); ++c) {
    put(res.centroids.at(c, 0), res.centroids.at(c, 1), kBlack);
  }
  std::ofstream out{path, std::ios::binary};
  out << "P6\n" << w << ' ' << h << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.data()), static_cast<std::streamsize>(img.size()));
}

}  // namespace

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto n = cli.get<std::size_t>("n", 1500, "total points");
  const auto k = cli.get<std::size_t>("k", 3, "clusters (Fig. 1 uses 3)");
  const auto spread = cli.get<double>("spread", 1.2, "cluster spread");
  const auto threads = cli.get<std::size_t>("threads", 4, "worker threads");
  const auto ranks = cli.get<int>("ranks", 2, "mini-MPI ranks for the distributed variant");
  const auto seed = cli.get<std::uint64_t>("seed", 11, "seed");
  const auto ppm_path = cli.get<std::string>("ppm", "kmeans.ppm", "PPM output ('' to skip)");
  cli.finish();

  peachy::data::BlobsSpec spec;
  spec.points_per_class = n / k;
  spec.classes = k;
  spec.dims = 2;
  spec.spread = spread;
  spec.seed = seed;
  const auto points = peachy::data::gaussian_blobs(spec).points;

  peachy::kmeans::Options opts;
  opts.k = k;
  opts.seed = seed;

  // The assignment's strategy stages, timed side by side.
  peachy::support::ThreadPool pool{threads};
  peachy::support::Table table;
  table.header({"variant", "iterations", "inertia", "ms"});
  peachy::kmeans::Result shown;
  {
    peachy::support::Stopwatch sw;
    shown = peachy::kmeans::cluster_sequential(points, opts);
    table.row({std::string{"sequential"}, static_cast<std::int64_t>(shown.iterations),
               shown.inertia, sw.elapsed_ms()});
  }
  for (const auto variant :
       {peachy::kmeans::Variant::kCritical, peachy::kmeans::Variant::kAtomic,
        peachy::kmeans::Variant::kReduction, peachy::kmeans::Variant::kReductionPadded}) {
    peachy::support::Stopwatch sw;
    const auto res = peachy::kmeans::cluster_parallel(points, opts, variant, pool, threads);
    table.row({peachy::kmeans::to_string(variant), static_cast<std::int64_t>(res.iterations),
               res.inertia, sw.elapsed_ms()});
  }

  // Distributed variant (paper §3's second model) plus a MapReduce pass
  // counting cluster sizes from the distributed result.  Root scatters,
  // every rank clusters its block; rank 0 publishes its Result (safe
  // without a lock — run() joins all rank threads before returning).
  std::vector<std::uint64_t> cluster_sizes(k, 0);
  {
    peachy::support::Stopwatch sw;
    peachy::kmeans::Result mpi_res;
    peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
      const peachy::data::PointSet empty;
      const auto res = peachy::kmeans::cluster_mpi(
          comm, comm.rank() == 0 ? points : empty, opts);

      // Cluster-size count as a MapReduce job over assignment chunks:
      // map emits (cluster, count) per chunk, collate shuffles by
      // cluster, reduce sums — MR-MPI's canonical histogram shape.
      peachy::mapreduce::MapReduce mr{comm};
      const std::size_t ntasks = static_cast<std::size_t>(comm.size()) * 4;
      mr.map(ntasks, [&](std::size_t task, peachy::mapreduce::KvEmitter& out) {
        const auto blk = peachy::support::static_block(res.assignment.size(), ntasks, task);
        std::vector<std::uint64_t> local(res.centroids.size(), 0);
        for (std::size_t i = blk.begin; i < blk.end; ++i) {
          ++local[static_cast<std::size_t>(res.assignment[i])];
        }
        for (std::size_t c = 0; c < local.size(); ++c) {
          if (local[c] != 0) out.emit_record(std::to_string(c), local[c]);
        }
      });
      mr.collate();
      mr.reduce([](const std::string& key, std::span<const std::string> values,
                   peachy::mapreduce::KvEmitter& out) {
        std::uint64_t total = 0;
        for (const auto& v : values) total += peachy::mapreduce::unpack_record<std::uint64_t>(v);
        out.emit_record(key, total);
      });
      const auto pairs = mr.gather(0);
      if (comm.rank() == 0) {
        mpi_res = res;
        for (const auto& kv : pairs) {
          cluster_sizes[std::stoul(kv.key)] =
              peachy::mapreduce::unpack_record<std::uint64_t>(kv.value);
        }
      }
    });
    table.row({"mpi[" + std::to_string(ranks) + " ranks]",
               static_cast<std::int64_t>(mpi_res.iterations), mpi_res.inertia,
               sw.elapsed_ms()});
  }

  std::cout << "K-means (paper §3, Fig. 1): " << points.size() << " 2-D points, K=" << k
            << ", " << threads << " threads\n\n";
  table.print();
  std::cout << "\ncluster sizes (MapReduce over " << ranks << " ranks):";
  for (std::size_t c = 0; c < cluster_sizes.size(); ++c) {
    std::cout << (c ? ", " : " ") << c << "=" << cluster_sizes[c];
  }
  std::cout << "\n\nclusters (digits = cluster id, '*' = centroid):\n"
            << scatter_ascii(points, shown, 78, 24);
  if (!ppm_path.empty()) {
    write_ppm(ppm_path, points, shown, 640, 480);
    std::cout << "\ncolor scatter written to " << ppm_path << "\n";
  }
  return 0;
}
