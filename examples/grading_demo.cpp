/// \file grading_demo.cpp
/// \brief Instructor-facing tour of peachy::analysis.
///
/// Runs four classic buggy "student submissions" — a send/recv deadlock, a
/// mismatched collective sequence, a leaked message, and a racing
/// parallel_for accumulator — under the checker and prints each report,
/// then shows the corrected accumulator coming back clean.  This is the
/// grading workflow: wrap the submission in mpi::run_checked() (or hand a
/// SharedArray to the kernel) and read the findings instead of staring at
/// a hung process or a flaky wrong answer.

#include <cstdlib>
#include <functional>
#include <iostream>

#include "analysis/race.hpp"
#include "mpi/mpi.hpp"
#include "support/parallel_for.hpp"
#include "support/thread_pool.hpp"

namespace pa = peachy::analysis;
namespace pm = peachy::mpi;
namespace ps = peachy::support;

namespace {

int failures = 0;

void show(const std::string& title, const pa::Report& report, bool expect_clean) {
  std::cout << "== " << title << " ==\n" << report.to_string() << '\n';
  if (report.clean() != expect_clean) ++failures;
}

}  // namespace

int main() {
  // 1. Deadlock: every rank receives before anyone sends.
  show("submission 1: head-to-head recv (deadlock)",
       pm::run_checked(2,
                       [](pm::Comm& c) {
                         const auto msg = c.recv<int>(1 - c.rank(), 7);
                         c.send<int>(1 - c.rank(), 7, msg);
                       })
           .report,
       /*expect_clean=*/false);

  // 2. Collective mismatch: rank 0 takes an early exit around a barrier.
  show("submission 2: divergent collective sequence",
       pm::run_checked(4,
                       [](pm::Comm& c) {
                         // This submission is the bug on display; keep the
                         // static analyzer from failing the demo build on it.
                         // peachy-lint: allow(L2)
                         if (c.rank() != 0) c.barrier();  // rank 0 skipped it
                         (void)c.allreduce_value(1, std::plus<>{});
                       })
           .report,
       /*expect_clean=*/false);

  // 3. Message leak: a reply is posted that nobody ever receives.
  show("submission 3: unreceived reply (message leak)",
       pm::run_checked(2,
                       [](pm::Comm& c) {
                         if (c.rank() == 0) {
                           c.send_value<int>(1, 1, 42);
                         } else {
                           const int v = c.recv_value<int>(0, 1);
                           c.send_value<int>(0, 2, v + 1);  // rank 0 never asks
                         }
                       })
           .report,
       /*expect_clean=*/false);

  // 4. Data race: a reduction written as a bare shared update.
  ps::ThreadPool pool{4};
  {
    pa::SharedArray<long> total{"total", 1};
    ps::parallel_for(pool, 0, 4,
                     [&](std::size_t i) { total.update(0, [i](long v) { return v + long(i); }); });
    show("submission 4: racing parallel_for accumulator", total.report(),
         /*expect_clean=*/false);
  }

  // 5. The fix the grader wants to see: same update under a TrackedMutex.
  {
    pa::SharedArray<long> total{"total", 1};
    pa::TrackedMutex mu;
    ps::parallel_for(pool, 0, 4, [&](std::size_t i) {
      const std::lock_guard lock{mu};
      total.update(0, [i](long v) { return v + long(i); });
    });
    show("submission 4 (corrected): locked accumulator", total.report(),
         /*expect_clean=*/true);
  }

  if (failures != 0) {
    std::cerr << "grading_demo: " << failures << " report(s) had unexpected verdicts\n";
    return EXIT_FAILURE;
  }
  std::cout << "grading_demo: all submissions diagnosed as expected\n";
  return EXIT_SUCCESS;
}
