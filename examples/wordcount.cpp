/// \file wordcount.cpp
/// \brief The MapReduce warm-up from the kNN assignment materials
/// (paper §2): distributed word counting, with the map / combine /
/// collate / reduce phases and shuffle volumes made visible.
///
///   ./wordcount [--words=50000 --ranks=4 --chunks=16 --seed=1 --top=15]

#include <algorithm>
#include <iostream>

#include "mapreduce/wordcount.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  const auto words = cli.get<std::size_t>("words", 50000, "corpus size in words");
  const auto ranks = cli.get<int>("ranks", 4, "mini-MPI ranks");
  const auto chunks = cli.get<std::size_t>("chunks", 16, "map tasks");
  const auto seed = cli.get<std::uint64_t>("seed", 1, "corpus seed");
  const auto top = cli.get<std::size_t>("top", 15, "top words to print");
  cli.finish();

  const auto corpus = peachy::mapreduce::synthetic_corpus(words, seed);
  std::cout << "word count (paper §2 warm-up): " << corpus.size() << "-byte corpus, " << words
            << " words, " << ranks << " ranks, " << chunks << " map tasks\n\n";

  std::vector<peachy::mapreduce::WordCount> counts;
  for (const bool combine : {false, true}) {
    peachy::mapreduce::WordCountOptions opts;
    opts.chunks = chunks;
    opts.local_combine = combine;
    peachy::support::Stopwatch sw;
    std::vector<peachy::mapreduce::WordCount> result;
    peachy::mpi::run(ranks, [&](peachy::mpi::Comm& comm) {
      auto got = peachy::mapreduce::word_count(comm, corpus, opts);
      if (comm.rank() == 0) result = std::move(got);
    });
    std::cout << (combine ? "with local combine:    " : "without local combine: ")
              << result.size() << " distinct words in " << sw.elapsed_ms() << " ms\n";
    counts = std::move(result);
  }

  const auto serial = peachy::mapreduce::word_count_serial(corpus);
  std::cout << "distributed == serial oracle: " << (counts == serial ? "yes ✓" : "NO ✗")
            << "\n\n";

  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  peachy::support::Table table;
  table.header({"word", "count"});
  for (std::size_t i = 0; i < std::min(top, counts.size()); ++i) {
    table.row({counts[i].word, counts[i].count});
  }
  std::cout << "top " << top << " words (Zipf-skewed by construction):\n";
  table.print();
  return 0;
}
