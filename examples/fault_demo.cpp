/// \file fault_demo.cpp
/// \brief Kill a rank mid-run, recover, and prove the answer survived.
///
/// The peachy::faults end-to-end demo: a deterministic fault plan crashes
/// one rank partway through a distributed computation; the survivors catch
/// faults::RankFailedError, revoke the communicator, shrink() to a smaller
/// one, and restart from the latest checkpoint — then the recovered answer
/// is compared against a fault-free reference run.
///
///   ./fault_demo [--mode=traffic|kmeans --ranks=4 --seed=42
///                 --crash-rank=1 --crash-step=200 --every=10
///                 --timeout-ms=10000 --transport=inproc|shm|socket
///                 --durable --ckpt-dir=DIR --chaos=off|full|delay
///                 --wire-prob=P --wedge-rank=N --wedge-after-ms=M
///                 --events-out=PREFIX --print-events ...]
///
/// Modes:
///   traffic — Nagel–Schreckenberg.  The PRNG cursor is absolute in
///             (step, car), so the recovered run must be BIT-IDENTICAL to
///             run_serial; the demo exits nonzero if it is not.
///   kmeans  — distributed k-means.  Recovery resumes on fewer ranks, so
///             allreduce summation order changes and bit equality is not
///             the contract; the demo checks convergence equivalence
///             (matching inertia to a relative tolerance) and reports the
///             checkpoint/recovery overheads (experiment T-FLT-1).
///
/// With --transport=shm|socket the traffic demo goes genuinely
/// multi-process: the parent relaunches itself via mpi::launch_self with
/// one OS process per rank, the injected crash becomes a real SIGKILL of
/// the victim's process, and each surviving process independently
/// revokes, shrinks, restarts from its own checkpoint, and verifies its
/// recovered state bit-identical to the fault-free serial reference.
/// The parent's verdict is the reaped process table: exactly one signal
/// death, every survivor exiting 0.  (kmeans aggregates its verdict
/// through shared memory, so it stays in-process.)
///
/// --print-events prints the injector's canonical fired-event log between
/// "fault events:" and "end events" markers; scripts/check.sh runs the
/// demo twice and diffs that block to verify seeded replay determinism.
/// --events-out=PREFIX writes the same log to PREFIX.<rank> instead, one
/// file per process, so multi-process replay diffs do not depend on
/// stdout interleaving.
///
/// Chaos hardening (this demo doubles as the wire-fault e2e):
///
///   --durable         use a DurableCheckpointStore at --ckpt-dir (default
///                     .peachy-fault-demo.<seed>, shared by every process).
///                     The checkpoint *owner* is pinned to the victim rank:
///                     only the rank about to die ever writes a snapshot, so
///                     the survivors' recovery proves the durable file —
///                     not any surviving in-memory copy — carried the state.
///   --chaos=full      seeded wire_drop + wire_corrupt noise on every data
///                     frame (probability --wire-prob) on top of the crash;
///                     survivors additionally ride out timeouts and CRC
///                     drops via revoke/shrink/restore.
///   --chaos=delay     semantics-preserving wire_delay noise and *no*
///                     crash: every rank must finish bit-identical, and two
///                     runs with the same seed must produce byte-identical
///                     wire event logs (the replay determinism gate).
///   --wedge-rank=N    rank N raises SIGSTOP after --wedge-after-ms: a
///                     wedged-not-dead process.  No crash event is planted;
///                     the heartbeat detector must confirm the silence and
///                     the survivors must recover exactly as for a kill
///                     (the parent's reaper SIGKILLs the stopped child).

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "data/points.hpp"
#include "faults/checkpoint.hpp"
#include "faults/plan.hpp"
#include "kmeans/mpi_kmeans.hpp"
#include "mpi/launch.hpp"
#include "mpi/mpi.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"
#include "traffic/mpi_traffic.hpp"

namespace {

namespace pf = peachy::faults;
namespace pm = peachy::mpi;

struct Config {
  std::string mode;
  int ranks = 4;
  std::uint64_t seed = 42;
  int crash_rank = 1;
  std::uint64_t crash_step = 200;
  int every = 10;
  std::uint64_t timeout_ms = 10000;
  bool print_events = false;
  bool durable = false;
  std::string ckpt_dir;      ///< durable store directory (shared by all ranks)
  std::string chaos;         ///< off | full | delay
  double wire_prob = 0.002;  ///< per-frame probability for chaos wire events
  int wedge_rank = -1;       ///< rank that SIGSTOPs itself (-1 = none)
  int wedge_after_ms = 200;
  std::string events_out;    ///< per-rank event log file prefix
  pm::TransportKind transport = pm::TransportKind::kDefault;
  int argc = 0;       ///< original argv, replayed verbatim by launch_self
  char** argv = nullptr;

  /// The rank whose process is expected to die (by SIGKILL or by the
  /// reaper finishing off a wedge); -1 when every rank should survive.
  [[nodiscard]] int victim() const {
    if (wedge_rank >= 0) return wedge_rank;
    return chaos == "delay" ? -1 : crash_rank;
  }
};

/// The recovery protocol every surviving rank follows: run `body` until it
/// completes; on a peer failure revoke the communicator (first observer
/// wins), shrink to the survivors, and go again — `body` restarts from the
/// latest checkpoint.  Returns the number of shrink episodes this rank saw.
///
/// With `ride_transients`, wire chaos symptoms — a timeout from a dropped
/// frame, a CRC-discarded message — take the same revoke/shrink/restore
/// path even though nobody died: shrink() keeps the full membership and
/// the restart replays from the latest checkpoint past the lost message.
template <typename Body>
int run_with_recovery(pm::Comm& world, bool ride_transients, const Body& body) {
  pm::Comm comm = world;
  int episodes = 0;
  for (;;) {
    try {
      body(comm);
      return episodes;
    } catch (const pf::CommRevokedError&) {
      // Another survivor observed the failure first and revoked; fall
      // through to the shared shrink.
    } catch (const pf::RankFailedError&) {
      comm.revoke();  // push the other survivors out of the dead collective
    } catch (const pf::TransientError&) {
      if (!ride_transients) throw;
      comm.revoke();
    }
    comm = comm.shrink();
    ++episodes;
  }
}

/// Parent half of a multi-process traffic demo: relaunch this binary as
/// one process per rank (same argv, so every child replays the same
/// config) and judge the reaped process table.  The injected crash is a
/// real SIGKILL in the victim's process, so success is exactly one
/// signal death and every survivor exiting 0 — each survivor verified
/// its own recovered state against the serial reference before exiting.
int launch_traffic_world(const Config& cfg) {
  if (cfg.wedge_rank >= 0) {
    // A wedged child never exits on its own: give the children a short
    // heartbeat (so survivors detect the silence) and arm the launcher's
    // straggler reaper (so the stopped process is SIGKILLed once the
    // survivors are done).  Explicit env settings win.
    setenv("PEACHY_HEARTBEAT_TIMEOUT", "2000", /*overwrite=*/0);
    setenv("PEACHY_LAUNCH_REAP_MS", "4000", /*overwrite=*/0);
  }
  pm::LaunchOptions lo;
  lo.nranks = cfg.ranks;
  lo.kind = cfg.transport;
  const pm::LaunchResult res = pm::launch_self(lo, cfg.argc, cfg.argv);
  int killed_rank = -1;
  for (const pm::ProcStatus& ps : res.procs) {
    std::cout << "  rank " << ps.rank << " (pid " << ps.pid << "): ";
    if (ps.signaled) {
      std::cout << "killed by signal " << ps.sig << "\n";
      killed_rank = ps.rank;
    } else {
      std::cout << "exit " << ps.exit_code << "\n";
    }
  }
  const int victim = cfg.victim();
  const int want_clean = victim >= 0 ? cfg.ranks - 1 : cfg.ranks;
  const bool ok = victim >= 0
                      ? (res.killed == 1 && killed_rank == victim && res.clean == want_clean)
                      : (res.killed == 0 && res.clean == want_clean);
  std::cout << "multi-process traffic demo (" << pm::transport_name(cfg.transport) << "): "
            << res.clean << "/" << want_clean << " survivors recovered"
            << (victim >= 0
                    ? " after rank " + std::to_string(victim) + "'s process was " +
                          (cfg.wedge_rank >= 0 ? "wedged then reaped" : "killed")
                    : " under wire chaos")
            << ": " << (ok ? "✓" : "✗") << "\n";
  return ok ? 0 : 1;
}

int demo_traffic(const Config& cfg, peachy::support::Cli& cli) {
  peachy::traffic::Spec spec;
  spec.cars = cli.get<std::size_t>("cars", 120, "number of cars");
  spec.road_length = cli.get<std::size_t>("length", 600, "road cells");
  spec.p_slow = cli.get<double>("p", 0.13, "random slowdown probability");
  spec.v_max = cli.get<int>("vmax", 5, "maximum velocity");
  spec.seed = cfg.seed;
  const auto steps = cli.get<std::size_t>("steps", 400, "time steps");
  cli.finish();

  const bool wire = cfg.transport == pm::TransportKind::kShm ||
                    cfg.transport == pm::TransportKind::kSocket;
  if ((cfg.chaos != "off" || cfg.wedge_rank >= 0) && !wire) {
    std::cerr << "--chaos and --wedge-rank need a real wire: use --transport=shm|socket\n";
    return 2;
  }
  const pm::LaunchInfo& li = pm::launch_info();
  if (!li.launched && cfg.durable) {
    // Fresh durable directory per run; only the parent (or the single
    // in-process run) cleans — launched children share the live dir.
    std::filesystem::remove_all(cfg.ckpt_dir);
  }
  if (wire && !li.launched) return launch_traffic_world(cfg);

  // A wedged rank: stop dead after a while, mid-collective, without
  // exiting — the failure mode only the heartbeat detector can see.
  if (li.launched && li.rank == cfg.wedge_rank) {
    std::thread{[ms = cfg.wedge_after_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds{ms});
      raise(SIGSTOP);
    }}.detach();
  }

  // Ground truth: the serial solver (run_mpi's contract is bit equality
  // with it for any rank count — including a rank count that shrank).
  const auto reference = peachy::traffic::run_serial(spec, steps);

  const int victim = cfg.victim();
  pf::FaultPlan plan;
  plan.set_seed(cfg.seed);
  if (cfg.wedge_rank < 0 && cfg.chaos != "delay") {
    plan.add({.kind = pf::FaultKind::crash,
              .rank = cfg.crash_rank,
              .step = cfg.crash_step});
  }
  if (cfg.chaos == "full") {
    plan.add({.kind = pf::FaultKind::wire_drop, .prob = cfg.wire_prob});
    plan.add({.kind = pf::FaultKind::wire_corrupt, .prob = cfg.wire_prob});
  } else if (cfg.chaos == "delay") {
    plan.add({.kind = pf::FaultKind::wire_delay, .prob = 0.05, .ns = 200'000});
  } else if (!cfg.chaos.empty() && cfg.chaos != "off") {
    std::cerr << "unknown --chaos=" << cfg.chaos << " (off | full | delay)\n";
    return 2;
  }

  std::unique_ptr<pf::CheckpointStore> store =
      cfg.durable ? std::make_unique<pf::DurableCheckpointStore>(cfg.ckpt_dir)
                  : std::make_unique<pf::CheckpointStore>();
  std::string event_log;
  pm::RunOptions ropts;
  ropts.plan = &plan;
  ropts.op_timeout_ns = cfg.timeout_ms * 1'000'000;
  ropts.fault_log = &event_log;
  ropts.transport = cfg.transport;

  std::vector<peachy::traffic::State> finals(static_cast<std::size_t>(cfg.ranks));
  std::vector<char> survived(static_cast<std::size_t>(cfg.ranks), 0);
  std::atomic<int> episodes{0};

  peachy::support::Stopwatch sw;
  pm::run(cfg.ranks, [&](pm::Comm& world) {
    const auto wr = static_cast<std::size_t>(world.rank());
    episodes.fetch_add(run_with_recovery(world, cfg.chaos == "full", [&](pm::Comm& comm) {
      pf::FtOptions ft{cfg.every, store.get(), "traffic"};
      if (cfg.durable) {
        // Pin checkpoint writing to the rank that is about to die (while
        // it is still a member): after the kill only the durable file —
        // not any survivor's memory — can carry its snapshots.  Once the
        // world has shrunk, rank 0 of the survivors takes over.
        ft.owner = victim >= 0 && comm.size() == cfg.ranks ? victim : 0;
      }
      finals[wr] = peachy::traffic::run_mpi(comm, spec, steps, nullptr, ft);
      survived[wr] = 1;
    }));
  }, ropts);
  const double faulty_ms = sw.elapsed_ms();

  if (!cfg.events_out.empty()) {
    // One file per process so multi-process replay diffs never depend on
    // stdout interleaving.
    std::ofstream out{cfg.events_out + "." + std::to_string(li.launched ? li.rank : 0)};
    out << event_log;
  }

  if (li.launched) {
    // One process, one rank: this process's whole verdict is its own
    // recovered state.  The crashed rank never gets here (its process
    // died to the injected SIGKILL); the parent checks the overall shape.
    const auto mine = static_cast<std::size_t>(li.rank);
    const bool ok = survived[mine] != 0 && finals[mine] == reference;
    std::cout << "rank " << li.rank << " (pid " << getpid() << "): recovered in "
              << faulty_ms << " ms after " << episodes.load() << " shrink episode(s); state "
              << (ok ? "bit-identical to serial reference ✓" : "MISMATCH ✗") << "\n";
    if (cfg.print_events) {
      std::cout << "fault events:\n" << event_log << "end events\n";
    }
    return ok ? 0 : 1;
  }

  int survivors = 0;
  bool identical = true;
  for (std::size_t r = 0; r < finals.size(); ++r) {
    if (survived[r] == 0) continue;
    ++survivors;
    if (!(finals[r] == reference)) identical = false;
  }

  std::cout << "traffic: " << spec.cars << " cars, " << steps << " steps, " << cfg.ranks
            << " ranks; crash rank " << cfg.crash_rank << " at step " << cfg.crash_step
            << ", checkpoint every " << cfg.every << "\n";
  std::cout << "survivors: " << survivors << "/" << cfg.ranks << ", shrink episodes (summed): "
            << episodes.load() << ", recovered run " << faulty_ms << " ms\n";
  std::cout << "recovered state == fault-free serial state: "
            << (identical && survivors == cfg.ranks - 1 ? "bit-identical ✓" : "MISMATCH ✗")
            << "\n";
  if (cfg.print_events) {
    std::cout << "fault events:\n" << event_log << "end events\n";
  }
  return identical && survivors == cfg.ranks - 1 ? 0 : 1;
}

int demo_kmeans(const Config& cfg, peachy::support::Cli& cli) {
  const auto n = cli.get<std::size_t>("n", 20000, "total points");
  const auto k = cli.get<std::size_t>("k", 8, "clusters");
  const auto spread = cli.get<double>("spread", 3.0,
                                      "cluster overlap (higher = more iterations)");
  cli.finish();

  peachy::data::BlobsSpec bspec;
  bspec.points_per_class = n / k;
  bspec.classes = k;
  bspec.dims = 2;
  bspec.spread = spread;
  bspec.seed = cfg.seed;
  const auto points = peachy::data::gaussian_blobs(bspec).points;

  peachy::kmeans::Options opts;
  opts.k = k;
  opts.seed = cfg.seed;

  const pf::FaultPlan no_faults;  // explicit empty plan: ignore PEACHY_FAULTS
  const auto timed_run = [&](const pf::FaultPlan& plan, pf::CheckpointStore* store,
                             std::string* log, peachy::kmeans::Result& out,
                             double& ms) -> int {
    pm::RunOptions ropts;
    ropts.plan = &plan;
    ropts.op_timeout_ns = cfg.timeout_ms * 1'000'000;
    ropts.fault_log = log;
    std::atomic<int> episodes{0};
    peachy::support::Stopwatch sw;
    pm::run(cfg.ranks, [&](pm::Comm& world) {
      const pf::FtOptions ft{store != nullptr ? cfg.every : 0, store, "kmeans"};
      episodes.fetch_add(run_with_recovery(world, false, [&](pm::Comm& comm) {
        const peachy::data::PointSet empty;
        auto res = peachy::kmeans::cluster_mpi(comm, comm.rank() == 0 ? points : empty,
                                               opts, nullptr, ft);
        if (comm.rank() == 0) out = std::move(res);
      }));
    }, ropts);
    ms = sw.elapsed_ms();
    return episodes.load();
  };

  peachy::kmeans::Result base, ckpt, recovered;
  double warm_ms = 0, base_ms = 0, ckpt_ms = 0, faulty_ms = 0;
  timed_run(no_faults, nullptr, nullptr, base, warm_ms);  // warmup (thread spawn etc.)
  timed_run(no_faults, nullptr, nullptr, base, base_ms);

  pf::CheckpointStore ckpt_store;
  timed_run(no_faults, &ckpt_store, nullptr, ckpt, ckpt_ms);

  pf::FaultPlan plan;
  plan.set_seed(cfg.seed);
  plan.add({.kind = pf::FaultKind::crash,
            .rank = cfg.crash_rank,
            .step = cfg.crash_step});
  pf::CheckpointStore store;
  std::string event_log;
  const int episodes = timed_run(plan, &store, &event_log, recovered, faulty_ms);

  const double rel =
      std::abs(recovered.inertia - base.inertia) / std::max(std::abs(base.inertia), 1e-300);
  // The crash must actually have fired (a too-late --crash-step would make
  // the verdict trivially true) and the recovered answer must converge to
  // the same clustering quality.
  const bool converged = episodes > 0 && rel < 1e-9;

  std::cout << "kmeans: " << points.size() << " points, k=" << k << ", " << cfg.ranks
            << " ranks; crash rank " << cfg.crash_rank << " at step " << cfg.crash_step
            << ", checkpoint every " << cfg.every << " iterations\n";
  std::cout << "T-FLT-1 recovery overhead:\n"
            << "  baseline (no ft):        " << base_ms << " ms, " << base.iterations
            << " iterations, inertia " << base.inertia << "\n"
            << "  checkpointing, no fault: " << ckpt_ms << " ms ("
            << (base_ms > 0 ? (ckpt_ms / base_ms - 1.0) * 100.0 : 0.0) << "% overhead)\n"
            << "  crash + shrink + restart:" << faulty_ms << " ms ("
            << (base_ms > 0 ? (faulty_ms / base_ms - 1.0) * 100.0 : 0.0) << "% overhead), "
            << recovered.iterations << " iterations, inertia " << recovered.inertia << "\n";
  std::cout << "shrink episodes (summed over survivors): " << episodes << "\n";
  std::cout << "recovered inertia matches fault-free (rel err " << rel
            << "): " << (converged ? "converged ✓" : "MISMATCH ✗") << "\n";
  if (cfg.print_events) {
    std::cout << "fault events:\n" << event_log << "end events\n";
  }
  return converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  Config cfg;
  cfg.mode = cli.get<std::string>("mode", "traffic", "traffic | kmeans");
  cfg.ranks = cli.get<int>("ranks", 4, "mini-MPI ranks");
  cfg.seed = cli.get<std::uint64_t>("seed", 42, "seed for data, PRNG, and fault plan");
  cfg.crash_rank = cli.get<int>("crash-rank", 1, "world rank the plan crashes");
  cfg.crash_step = cli.get<std::uint64_t>("crash-step", 200,
                                          "MPI operation index at which it crashes");
  cfg.every = cli.get<int>("every", 10, "checkpoint cadence (iterations)");
  cfg.timeout_ms = cli.get<std::uint64_t>("timeout-ms", 10000, "per-op deadline");
  cfg.print_events = cli.flag("print-events", "print the injector's fired-event log");
  cfg.durable = cli.flag("durable", "file-backed checkpoints that survive the SIGKILL");
  cfg.ckpt_dir = cli.get<std::string>("ckpt-dir",
                                      ".peachy-fault-demo." + std::to_string(cfg.seed),
                                      "durable checkpoint directory (shared by all ranks)");
  cfg.chaos = cli.get<std::string>("chaos", "off",
                                   "wire noise: off | full (drop+corrupt+crash) | "
                                   "delay (semantics-preserving, no crash)");
  cfg.wire_prob = cli.get<double>("wire-prob", 0.002,
                                  "per-frame probability for --chaos=full events");
  cfg.wedge_rank = cli.get<int>("wedge-rank", -1,
                                "rank that SIGSTOPs itself instead of crashing (-1 = off)");
  cfg.wedge_after_ms = cli.get<int>("wedge-after-ms", 200, "wedge delay");
  cfg.events_out = cli.get<std::string>("events-out", "",
                                        "write the fired-event log to PREFIX.<rank>");
  const auto transport = cli.get<std::string>(
      "transport", "inproc", "mini-MPI transport (inproc | shm | socket)");
  cfg.transport = peachy::mpi::parse_transport(transport);
  cfg.argc = argc;
  cfg.argv = argv;

  if (cfg.mode == "traffic") return demo_traffic(cfg, cli);
  if (cfg.mode == "kmeans") {
    if (cfg.transport == pm::TransportKind::kShm ||
        cfg.transport == pm::TransportKind::kSocket) {
      // The kmeans demo's verdict (T-FLT-1 overhead comparison) aggregates
      // results through shared memory on rank 0, which a multi-process
      // world cannot do; traffic is the multi-process story.
      std::cerr << "--mode=kmeans supports only --transport=inproc "
                   "(use --mode=traffic for the multi-process demo)\n";
      return 2;
    }
    return demo_kmeans(cfg, cli);
  }
  std::cerr << "unknown --mode=" << cfg.mode << " (traffic | kmeans)\n";
  return 2;
}
