/// \file fault_demo.cpp
/// \brief Kill a rank mid-run, recover, and prove the answer survived.
///
/// The peachy::faults end-to-end demo: a deterministic fault plan crashes
/// one rank partway through a distributed computation; the survivors catch
/// faults::RankFailedError, revoke the communicator, shrink() to a smaller
/// one, and restart from the latest checkpoint — then the recovered answer
/// is compared against a fault-free reference run.
///
///   ./fault_demo [--mode=traffic|kmeans --ranks=4 --seed=42
///                 --crash-rank=1 --crash-step=200 --every=10
///                 --timeout-ms=10000 --transport=inproc|shm|socket
///                 --print-events ...]
///
/// Modes:
///   traffic — Nagel–Schreckenberg.  The PRNG cursor is absolute in
///             (step, car), so the recovered run must be BIT-IDENTICAL to
///             run_serial; the demo exits nonzero if it is not.
///   kmeans  — distributed k-means.  Recovery resumes on fewer ranks, so
///             allreduce summation order changes and bit equality is not
///             the contract; the demo checks convergence equivalence
///             (matching inertia to a relative tolerance) and reports the
///             checkpoint/recovery overheads (experiment T-FLT-1).
///
/// With --transport=shm|socket the traffic demo goes genuinely
/// multi-process: the parent relaunches itself via mpi::launch_self with
/// one OS process per rank, the injected crash becomes a real SIGKILL of
/// the victim's process, and each surviving process independently
/// revokes, shrinks, restarts from its own checkpoint, and verifies its
/// recovered state bit-identical to the fault-free serial reference.
/// The parent's verdict is the reaped process table: exactly one signal
/// death, every survivor exiting 0.  (kmeans aggregates its verdict
/// through shared memory, so it stays in-process.)
///
/// --print-events prints the injector's canonical fired-event log between
/// "fault events:" and "end events" markers; scripts/check.sh runs the
/// demo twice and diffs that block to verify seeded replay determinism.

#include <atomic>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "data/points.hpp"
#include "faults/checkpoint.hpp"
#include "faults/plan.hpp"
#include "kmeans/mpi_kmeans.hpp"
#include "mpi/launch.hpp"
#include "mpi/mpi.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"
#include "traffic/mpi_traffic.hpp"

namespace {

namespace pf = peachy::faults;
namespace pm = peachy::mpi;

struct Config {
  std::string mode;
  int ranks = 4;
  std::uint64_t seed = 42;
  int crash_rank = 1;
  std::uint64_t crash_step = 200;
  int every = 10;
  std::uint64_t timeout_ms = 10000;
  bool print_events = false;
  pm::TransportKind transport = pm::TransportKind::kDefault;
  int argc = 0;       ///< original argv, replayed verbatim by launch_self
  char** argv = nullptr;
};

/// The recovery protocol every surviving rank follows: run `body` until it
/// completes; on a peer failure revoke the communicator (first observer
/// wins), shrink to the survivors, and go again — `body` restarts from the
/// latest checkpoint.  Returns the number of shrink episodes this rank saw.
template <typename Body>
int run_with_recovery(pm::Comm& world, const Body& body) {
  pm::Comm comm = world;
  int episodes = 0;
  for (;;) {
    try {
      body(comm);
      return episodes;
    } catch (const pf::CommRevokedError&) {
      // Another survivor observed the failure first and revoked; fall
      // through to the shared shrink.
    } catch (const pf::RankFailedError&) {
      comm.revoke();  // push the other survivors out of the dead collective
    }
    comm = comm.shrink();
    ++episodes;
  }
}

/// Parent half of a multi-process traffic demo: relaunch this binary as
/// one process per rank (same argv, so every child replays the same
/// config) and judge the reaped process table.  The injected crash is a
/// real SIGKILL in the victim's process, so success is exactly one
/// signal death and every survivor exiting 0 — each survivor verified
/// its own recovered state against the serial reference before exiting.
int launch_traffic_world(const Config& cfg) {
  pm::LaunchOptions lo;
  lo.nranks = cfg.ranks;
  lo.kind = cfg.transport;
  const pm::LaunchResult res = pm::launch_self(lo, cfg.argc, cfg.argv);
  int killed_rank = -1;
  for (const pm::ProcStatus& ps : res.procs) {
    std::cout << "  rank " << ps.rank << " (pid " << ps.pid << "): ";
    if (ps.signaled) {
      std::cout << "killed by signal " << ps.sig << "\n";
      killed_rank = ps.rank;
    } else {
      std::cout << "exit " << ps.exit_code << "\n";
    }
  }
  const bool ok =
      res.killed == 1 && killed_rank == cfg.crash_rank && res.clean == cfg.ranks - 1;
  std::cout << "multi-process traffic demo (" << pm::transport_name(cfg.transport) << "): "
            << res.clean << "/" << cfg.ranks - 1 << " survivors recovered after rank "
            << cfg.crash_rank << "'s process was killed: " << (ok ? "✓" : "✗") << "\n";
  return ok ? 0 : 1;
}

int demo_traffic(const Config& cfg, peachy::support::Cli& cli) {
  peachy::traffic::Spec spec;
  spec.cars = cli.get<std::size_t>("cars", 120, "number of cars");
  spec.road_length = cli.get<std::size_t>("length", 600, "road cells");
  spec.p_slow = cli.get<double>("p", 0.13, "random slowdown probability");
  spec.v_max = cli.get<int>("vmax", 5, "maximum velocity");
  spec.seed = cfg.seed;
  const auto steps = cli.get<std::size_t>("steps", 400, "time steps");
  cli.finish();

  const bool wire = cfg.transport == pm::TransportKind::kShm ||
                    cfg.transport == pm::TransportKind::kSocket;
  const pm::LaunchInfo& li = pm::launch_info();
  if (wire && !li.launched) return launch_traffic_world(cfg);

  // Ground truth: the serial solver (run_mpi's contract is bit equality
  // with it for any rank count — including a rank count that shrank).
  const auto reference = peachy::traffic::run_serial(spec, steps);

  pf::FaultPlan plan;
  plan.set_seed(cfg.seed);
  plan.add({.kind = pf::FaultKind::crash,
            .rank = cfg.crash_rank,
            .step = cfg.crash_step});

  pf::CheckpointStore store;
  std::string event_log;
  pm::RunOptions ropts;
  ropts.plan = &plan;
  ropts.op_timeout_ns = cfg.timeout_ms * 1'000'000;
  ropts.fault_log = &event_log;
  ropts.transport = cfg.transport;

  std::vector<peachy::traffic::State> finals(static_cast<std::size_t>(cfg.ranks));
  std::vector<char> survived(static_cast<std::size_t>(cfg.ranks), 0);
  std::atomic<int> episodes{0};

  peachy::support::Stopwatch sw;
  pm::run(cfg.ranks, [&](pm::Comm& world) {
    const auto wr = static_cast<std::size_t>(world.rank());
    const pf::FtOptions ft{cfg.every, &store, "traffic"};
    episodes.fetch_add(run_with_recovery(world, [&](pm::Comm& comm) {
      finals[wr] = peachy::traffic::run_mpi(comm, spec, steps, nullptr, ft);
      survived[wr] = 1;
    }));
  }, ropts);
  const double faulty_ms = sw.elapsed_ms();

  if (li.launched) {
    // One process, one rank: this process's whole verdict is its own
    // recovered state.  The crashed rank never gets here (its process
    // died to the injected SIGKILL); the parent checks the overall shape.
    const auto mine = static_cast<std::size_t>(li.rank);
    const bool ok = survived[mine] != 0 && finals[mine] == reference;
    std::cout << "rank " << li.rank << " (pid " << getpid() << "): recovered in "
              << faulty_ms << " ms after " << episodes.load() << " shrink episode(s); state "
              << (ok ? "bit-identical to serial reference ✓" : "MISMATCH ✗") << "\n";
    if (cfg.print_events) {
      std::cout << "fault events:\n" << event_log << "end events\n";
    }
    return ok ? 0 : 1;
  }

  int survivors = 0;
  bool identical = true;
  for (std::size_t r = 0; r < finals.size(); ++r) {
    if (survived[r] == 0) continue;
    ++survivors;
    if (!(finals[r] == reference)) identical = false;
  }

  std::cout << "traffic: " << spec.cars << " cars, " << steps << " steps, " << cfg.ranks
            << " ranks; crash rank " << cfg.crash_rank << " at step " << cfg.crash_step
            << ", checkpoint every " << cfg.every << "\n";
  std::cout << "survivors: " << survivors << "/" << cfg.ranks << ", shrink episodes (summed): "
            << episodes.load() << ", recovered run " << faulty_ms << " ms\n";
  std::cout << "recovered state == fault-free serial state: "
            << (identical && survivors == cfg.ranks - 1 ? "bit-identical ✓" : "MISMATCH ✗")
            << "\n";
  if (cfg.print_events) {
    std::cout << "fault events:\n" << event_log << "end events\n";
  }
  return identical && survivors == cfg.ranks - 1 ? 0 : 1;
}

int demo_kmeans(const Config& cfg, peachy::support::Cli& cli) {
  const auto n = cli.get<std::size_t>("n", 20000, "total points");
  const auto k = cli.get<std::size_t>("k", 8, "clusters");
  const auto spread = cli.get<double>("spread", 3.0,
                                      "cluster overlap (higher = more iterations)");
  cli.finish();

  peachy::data::BlobsSpec bspec;
  bspec.points_per_class = n / k;
  bspec.classes = k;
  bspec.dims = 2;
  bspec.spread = spread;
  bspec.seed = cfg.seed;
  const auto points = peachy::data::gaussian_blobs(bspec).points;

  peachy::kmeans::Options opts;
  opts.k = k;
  opts.seed = cfg.seed;

  const pf::FaultPlan no_faults;  // explicit empty plan: ignore PEACHY_FAULTS
  const auto timed_run = [&](const pf::FaultPlan& plan, pf::CheckpointStore* store,
                             std::string* log, peachy::kmeans::Result& out,
                             double& ms) -> int {
    pm::RunOptions ropts;
    ropts.plan = &plan;
    ropts.op_timeout_ns = cfg.timeout_ms * 1'000'000;
    ropts.fault_log = log;
    std::atomic<int> episodes{0};
    peachy::support::Stopwatch sw;
    pm::run(cfg.ranks, [&](pm::Comm& world) {
      const pf::FtOptions ft{store != nullptr ? cfg.every : 0, store, "kmeans"};
      episodes.fetch_add(run_with_recovery(world, [&](pm::Comm& comm) {
        const peachy::data::PointSet empty;
        auto res = peachy::kmeans::cluster_mpi(comm, comm.rank() == 0 ? points : empty,
                                               opts, nullptr, ft);
        if (comm.rank() == 0) out = std::move(res);
      }));
    }, ropts);
    ms = sw.elapsed_ms();
    return episodes.load();
  };

  peachy::kmeans::Result base, ckpt, recovered;
  double warm_ms = 0, base_ms = 0, ckpt_ms = 0, faulty_ms = 0;
  timed_run(no_faults, nullptr, nullptr, base, warm_ms);  // warmup (thread spawn etc.)
  timed_run(no_faults, nullptr, nullptr, base, base_ms);

  pf::CheckpointStore ckpt_store;
  timed_run(no_faults, &ckpt_store, nullptr, ckpt, ckpt_ms);

  pf::FaultPlan plan;
  plan.set_seed(cfg.seed);
  plan.add({.kind = pf::FaultKind::crash,
            .rank = cfg.crash_rank,
            .step = cfg.crash_step});
  pf::CheckpointStore store;
  std::string event_log;
  const int episodes = timed_run(plan, &store, &event_log, recovered, faulty_ms);

  const double rel =
      std::abs(recovered.inertia - base.inertia) / std::max(std::abs(base.inertia), 1e-300);
  // The crash must actually have fired (a too-late --crash-step would make
  // the verdict trivially true) and the recovered answer must converge to
  // the same clustering quality.
  const bool converged = episodes > 0 && rel < 1e-9;

  std::cout << "kmeans: " << points.size() << " points, k=" << k << ", " << cfg.ranks
            << " ranks; crash rank " << cfg.crash_rank << " at step " << cfg.crash_step
            << ", checkpoint every " << cfg.every << " iterations\n";
  std::cout << "T-FLT-1 recovery overhead:\n"
            << "  baseline (no ft):        " << base_ms << " ms, " << base.iterations
            << " iterations, inertia " << base.inertia << "\n"
            << "  checkpointing, no fault: " << ckpt_ms << " ms ("
            << (base_ms > 0 ? (ckpt_ms / base_ms - 1.0) * 100.0 : 0.0) << "% overhead)\n"
            << "  crash + shrink + restart:" << faulty_ms << " ms ("
            << (base_ms > 0 ? (faulty_ms / base_ms - 1.0) * 100.0 : 0.0) << "% overhead), "
            << recovered.iterations << " iterations, inertia " << recovered.inertia << "\n";
  std::cout << "shrink episodes (summed over survivors): " << episodes << "\n";
  std::cout << "recovered inertia matches fault-free (rel err " << rel
            << "): " << (converged ? "converged ✓" : "MISMATCH ✗") << "\n";
  if (cfg.print_events) {
    std::cout << "fault events:\n" << event_log << "end events\n";
  }
  return converged ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  Config cfg;
  cfg.mode = cli.get<std::string>("mode", "traffic", "traffic | kmeans");
  cfg.ranks = cli.get<int>("ranks", 4, "mini-MPI ranks");
  cfg.seed = cli.get<std::uint64_t>("seed", 42, "seed for data, PRNG, and fault plan");
  cfg.crash_rank = cli.get<int>("crash-rank", 1, "world rank the plan crashes");
  cfg.crash_step = cli.get<std::uint64_t>("crash-step", 200,
                                          "MPI operation index at which it crashes");
  cfg.every = cli.get<int>("every", 10, "checkpoint cadence (iterations)");
  cfg.timeout_ms = cli.get<std::uint64_t>("timeout-ms", 10000, "per-op deadline");
  cfg.print_events = cli.flag("print-events", "print the injector's fired-event log");
  const auto transport = cli.get<std::string>(
      "transport", "inproc", "mini-MPI transport (inproc | shm | socket)");
  cfg.transport = peachy::mpi::parse_transport(transport);
  cfg.argc = argc;
  cfg.argv = argv;

  if (cfg.mode == "traffic") return demo_traffic(cfg, cli);
  if (cfg.mode == "kmeans") {
    if (cfg.transport == pm::TransportKind::kShm ||
        cfg.transport == pm::TransportKind::kSocket) {
      // The kmeans demo's verdict (T-FLT-1 overhead comparison) aggregates
      // results through shared memory on rank 0, which a multi-process
      // world cannot do; traffic is the multi-process story.
      std::cerr << "--mode=kmeans supports only --transport=inproc "
                   "(use --mode=traffic for the multi-process demo)\n";
      return 2;
    }
    return demo_kmeans(cfg, cli);
  }
  std::cerr << "unknown --mode=" << cfg.mode << " (traffic | kmeans)\n";
  return 2;
}
