/// \file traffic_sim.cpp
/// \brief Figure 3 reproduction: the Nagel–Schreckenberg space–time
/// diagram (200 cars, road length 1000, p = 0.13, v_max = 5) showing
/// spontaneous jams propagating backwards — and their absence when the
/// randomization is switched off.
///
///   ./traffic_sim [--cars=200 --length=1000 --p=0.13 --vmax=5
///                  --steps=300 --threads=4 --seed=42 --pgm=traffic.pgm]

#include <fstream>
#include <iostream>

#include "support/cli.hpp"
#include "traffic/diagram.hpp"
#include "traffic/traffic.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  peachy::traffic::Spec spec;
  spec.cars = cli.get<std::size_t>("cars", 200, "number of cars");
  spec.road_length = cli.get<std::size_t>("length", 1000, "road cells");
  spec.p_slow = cli.get<double>("p", 0.13, "random slowdown probability");
  spec.v_max = cli.get<int>("vmax", 5, "maximum velocity");
  spec.seed = cli.get<std::uint64_t>("seed", 42, "PRNG seed");
  const auto steps = cli.get<std::size_t>("steps", 300, "time steps");
  const auto threads = cli.get<std::size_t>("threads", 4, "worker threads");
  const auto pgm_path = cli.get<std::string>("pgm", "traffic_spacetime.pgm",
                                             "output PGM image path ('' to skip)");
  cli.finish();

  std::cout << "Nagel–Schreckenberg: " << spec.cars << " cars, road " << spec.road_length
            << ", p=" << spec.p_slow << ", v_max=" << spec.v_max << ", " << steps
            << " steps\n\n";

  // Serial run with snapshots for the diagram.
  std::vector<peachy::traffic::State> snaps;
  const auto final_state = peachy::traffic::run_serial(spec, steps, &snaps);

  // Reproducibility check: the whole point of the assignment.
  peachy::support::ThreadPool pool{threads};
  peachy::traffic::ParallelStats pstats;
  const auto parallel = peachy::traffic::run_parallel(spec, steps, pool, threads, &pstats);
  std::cout << "parallel (" << threads << " threads) == serial: "
            << (parallel == final_state ? "bit-identical ✓" : "MISMATCH ✗") << " ("
            << pstats.fast_forwards << " PRNG fast-forwards)\n";

  const auto independent =
      peachy::traffic::run_parallel_independent_rngs(spec, steps, pool, threads);
  std::cout << "per-thread-seed shortcut == serial: "
            << (independent == final_state ? "identical (coincidence!)" : "differs, as the paper warns")
            << "\n\n";

  // The last 30 steps of the space–time diagram (time flows downward).
  const std::size_t show = std::min<std::size_t>(30, snaps.size());
  std::vector<peachy::traffic::State> tail(snaps.end() - static_cast<std::ptrdiff_t>(show),
                                           snaps.end());
  const std::size_t stride = std::max<std::size_t>(1, spec.road_length / 100);
  std::cout << "space-time diagram (last " << show << " steps, '#'=stopped, 'o'=slow, "
            << "'.'=free flow, 1 column ≈ " << stride << " cells):\n"
            << peachy::traffic::spacetime_ascii(spec, tail, stride) << "\n";

  std::cout << "mean velocity " << peachy::traffic::mean_velocity(final_state) << " of v_max "
            << spec.v_max << "; " << peachy::traffic::stopped_cars(final_state)
            << " cars stopped (jammed)\n";

  // Contrast: the deterministic model has no jams at this density.
  peachy::traffic::Spec calm = spec;
  calm.p_slow = 0.0;
  const auto calm_state = peachy::traffic::run_serial(calm, steps);
  std::cout << "with p=0 (no randomness): " << peachy::traffic::stopped_cars(calm_state)
            << " cars stopped — \"without randomness, these do not occur\"\n";

  if (!pgm_path.empty()) {
    std::ofstream out{pgm_path, std::ios::binary};
    const auto pgm = peachy::traffic::spacetime_pgm(spec, snaps);
    out.write(pgm.data(), static_cast<std::streamsize>(pgm.size()));
    std::cout << "\nfull space-time diagram written to " << pgm_path << " ("
              << spec.road_length << "x" << snaps.size() << " PGM)\n";
  }
  return 0;
}
