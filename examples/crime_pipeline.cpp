/// \file crime_pipeline.cpp
/// \brief Figure 2 reproduction: the data-science pipeline that combines
/// four datasets into "a spatial heat map displaying the number of
/// arrests per 100,000 citizens" per neighborhood, plus the project's two
/// other analysis problems (offense distribution, borough trend).
///
///   ./crime_pipeline [--rows=8 --cols=8 --historic=40000 --current=20000
///                     --year=2021 --partitions=8 --threads=4 --seed=7
///                     --pgm=crime_heatmap.pgm]

#include <fstream>
#include <iostream>

#include "pipeline/crime.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  peachy::support::Cli cli{argc, argv};
  peachy::pipeline::CrimeConfig cfg;
  cfg.city.rows = cli.get<std::size_t>("rows", 8, "NTA grid rows");
  cfg.city.cols = cli.get<std::size_t>("cols", 8, "NTA grid columns");
  cfg.historic_arrests = cli.get<std::size_t>("historic", 40000, "historic arrest records");
  cfg.current_arrests = cli.get<std::size_t>("current", 20000, "current-year arrest records");
  cfg.target_year = cli.get<std::int32_t>("year", 2021, "analysis year");
  cfg.partitions = cli.get<std::size_t>("partitions", 8, "spark partitions");
  cfg.threads = cli.get<std::size_t>("threads", 4, "spark worker threads");
  cfg.seed = cli.get<std::uint64_t>("seed", 7, "dataset seed");
  const auto pgm_path =
      cli.get<std::string>("pgm", "crime_heatmap.pgm", "heat map output ('' to skip)");
  cli.finish();

  std::cout << "Crime pipeline (paper §4, Fig. 2): " << cfg.city.rows * cfg.city.cols
            << " NTAs, " << cfg.historic_arrests + cfg.current_arrests << " arrests, year "
            << cfg.target_year << "\n\n";

  const auto report = peachy::pipeline::run_crime_pipeline(cfg);

  // Problem 1: arrests per 100k per NTA (top 10).
  peachy::support::Table top;
  top.header({"rank", "nta", "borough", "arrests", "population", "per 100k"});
  for (std::size_t i = 0; i < std::min<std::size_t>(10, report.rates.size()); ++i) {
    const auto& r = report.rates[i];
    top.row({static_cast<std::int64_t>(i + 1), r.nta, r.borough, r.arrests, r.population,
             r.per_100k});
  }
  std::cout << "problem 1 — arrests per 100,000 citizens (top 10 NTAs):\n";
  top.print();

  // Problem 2: offense distribution.
  std::cout << "\nproblem 2 — offense distribution in " << cfg.target_year << ":\n";
  peachy::support::Table offenses;
  offenses.header({"offense", "arrests"});
  for (const auto& [offense, count] : report.offenses) offenses.row({offense, count});
  offenses.print();

  // Problem 3: borough trend.
  std::cout << "\nproblem 3 — arrests per borough per year:\n";
  peachy::support::Table trend;
  trend.header({"borough", "year", "arrests"});
  for (const auto& [borough, years] : report.borough_by_year) {
    for (const auto& [year, count] : years) {
      trend.row({borough, static_cast<std::int64_t>(year), count});
    }
  }
  trend.print();

  // The heat map.
  std::cout << "\narrests-per-100k heat map (darker = fewer, brighter = more):\n"
            << report.heat_map_ascii;
  if (!pgm_path.empty()) {
    std::ofstream out{pgm_path, std::ios::binary};
    out.write(report.heat_map_pgm.data(),
              static_cast<std::streamsize>(report.heat_map_pgm.size()));
    std::cout << "heat map written to " << pgm_path << "\n";
  }

  // Pipeline health.
  std::cout << "\nstage timings:\n";
  peachy::support::Table stages;
  stages.header({"stage", "ms"});
  for (const auto& t : report.stage_timings) stages.row({t.name, t.seconds * 1e3});
  stages.print();
  std::cout << "\nspark engine: " << report.engine.tasks << " tasks, "
            << report.engine.shuffles << " shuffles, " << report.engine.shuffle_records
            << " records shuffled\n";
  std::cout << "events: " << report.events_ingested << " ingested, "
            << report.events_in_target_year << " in " << cfg.target_year << ", "
            << report.events_located << " located in an NTA\n";
  return 0;
}
